package period_test

import (
	"fmt"
	"strings"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/period"
	"snapk/internal/qgen"
	"snapk/internal/semiring"
	"snapk/internal/telement"
	"snapk/internal/tuple"
)

var dom = interval.NewDomain(0, 24)

func str(s string) tuple.Value { return tuple.String_(s) }

// runningExample builds the period ℕ-database of Figure 2 (middle).
func runningExample() *period.DB[int64] {
	db := period.NewDB[int64](semiring.N, dom)
	works := db.CreateRelation("works", tuple.NewSchema("name", "skill"))
	works.AddPeriod(tuple.Tuple{str("Ann"), str("SP")}, interval.New(3, 10), 1)
	works.AddPeriod(tuple.Tuple{str("Joe"), str("NS")}, interval.New(8, 16), 1)
	works.AddPeriod(tuple.Tuple{str("Sam"), str("SP")}, interval.New(8, 16), 1)
	works.AddPeriod(tuple.Tuple{str("Ann"), str("SP")}, interval.New(18, 20), 1)
	assign := db.CreateRelation("assign", tuple.NewSchema("mach", "skill"))
	assign.AddPeriod(tuple.Tuple{str("M1"), str("SP")}, interval.New(3, 12), 1)
	assign.AddPeriod(tuple.Tuple{str("M2"), str("SP")}, interval.New(6, 14), 1)
	assign.AddPeriod(tuple.Tuple{str("M3"), str("NS")}, interval.New(3, 16), 1)
	return db
}

func qOnduty() algebra.Query {
	return algebra.Agg{
		Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
		In:   algebra.Select{Pred: algebra.Eq(algebra.Col("skill"), algebra.StrC("SP")), In: algebra.Rel{Name: "works"}},
	}
}

func qSkillreq() algebra.Query {
	return algebra.Diff{
		L: algebra.ProjectCols(algebra.Rel{Name: "assign"}, "skill"),
		R: algebra.ProjectCols(algebra.Rel{Name: "works"}, "skill"),
	}
}

// elem builds a normalized element from (begin, end, value) triples.
func elem(alg telement.MAlgebra[int64], triples ...[3]int64) telement.Element[int64] {
	pairs := make([]telement.Seg[int64], len(triples))
	for i, tr := range triples {
		pairs[i] = telement.Seg[int64]{Iv: interval.New(tr[0], tr[1]), Val: tr[2]}
	}
	return alg.Coalesce(pairs)
}

// TestFigure2WorksEncoding checks that loading the running example
// produces exactly the period ℕ-relation of Figure 2 (middle, left):
// (Ann, SP) has the two-interval annotation, merged from two facts.
func TestFigure2WorksEncoding(t *testing.T) {
	db := runningExample()
	works, _ := db.Relation("works")
	if works.Len() != 3 {
		t.Fatalf("works has %d tuples, want 3 (Ann's facts merged)", works.Len())
	}
	ann := works.Annotation(tuple.Tuple{str("Ann"), str("SP")})
	want := elem(db.Algebra(), [3]int64{3, 10, 1}, [3]int64{18, 20, 1})
	if !ann.Equal(want) {
		t.Fatalf("Ann annotation = %v, want %v", ann, want)
	}
}

// TestFigure2QondutyLogicalResult checks the Qonduty result in the
// logical model (Figure 2 middle, right).
func TestFigure2QondutyLogicalResult(t *testing.T) {
	db := runningExample()
	res, err := db.Eval(qOnduty())
	if err != nil {
		t.Fatal(err)
	}
	alg := db.Algebra()
	want := map[int64]telement.Element[int64]{
		0: elem(alg, [3]int64{0, 3, 1}, [3]int64{16, 18, 1}, [3]int64{20, 24, 1}),
		1: elem(alg, [3]int64{3, 8, 1}, [3]int64{10, 16, 1}, [3]int64{18, 20, 1}),
		2: elem(alg, [3]int64{8, 10, 1}),
	}
	if res.Len() != len(want) {
		t.Fatalf("result has %d tuples: %v", res.Len(), res)
	}
	for cnt, w := range want {
		got := res.Annotation(tuple.Tuple{tuple.Int(cnt)})
		if !got.Equal(w) {
			t.Errorf("cnt=%d annotation = %v, want %v", cnt, got, w)
		}
	}
}

// TestFigure1cSkillreqLogicalResult checks snapshot bag difference in the
// logical model against Figure 1c.
func TestFigure1cSkillreqLogicalResult(t *testing.T) {
	db := runningExample()
	res, err := db.Eval(qSkillreq())
	if err != nil {
		t.Fatal(err)
	}
	alg := db.Algebra()
	gotSP := res.Annotation(tuple.Tuple{str("SP")})
	wantSP := elem(alg, [3]int64{6, 8, 1}, [3]int64{10, 12, 1})
	if !gotSP.Equal(wantSP) {
		t.Errorf("SP = %v, want %v", gotSP, wantSP)
	}
	gotNS := res.Annotation(tuple.Tuple{str("NS")})
	wantNS := elem(alg, [3]int64{3, 8, 1})
	if !gotNS.Equal(wantNS) {
		t.Errorf("NS = %v, want %v", gotNS, wantNS)
	}
}

// TestEncDecRoundtrip checks Lemma 6.4 (bijectivity) and Lemma 6.5
// (snapshot preservation) on the running example and random databases.
func TestEncDecRoundtrip(t *testing.T) {
	g := qgen.New(41)
	for i := 0; i < 30; i++ {
		spec := g.GenDB()
		sdb := spec.ToSnapshotDB()
		pdb := spec.ToPeriodDB()
		for _, tbl := range spec.Tables {
			srel, err := sdb.Relation(tbl.Name)
			if err != nil {
				t.Fatal(err)
			}
			prel, err := pdb.Relation(tbl.Name)
			if err != nil {
				t.Fatal(err)
			}
			enc := period.Enc(pdb.Algebra(), srel)
			if !enc.Equal(prel) {
				t.Fatalf("ENC(snapshot load) != period load for %s:\n%v\n%v", tbl.Name, enc, prel)
			}
			dec := period.Dec(prel, spec.Dom)
			if !dec.Equal(srel) {
				t.Fatalf("DEC(period load) != snapshot load for %s", tbl.Name)
			}
			// Snapshot preservation: τ_T(ENC⁻¹ ∘ ENC) = τ_T.
			for tp := spec.Dom.Min; tp < spec.Dom.Max; tp++ {
				if !prel.Timeslice(tp).Equal(srel.Timeslice(tp)) {
					t.Fatalf("timeslice mismatch at %d for %s", tp, tbl.Name)
				}
			}
		}
	}
}

// TestRepresentationSystem is the central property test of the logical
// model (Thm 6.6/7.3): for random databases and random RA_agg queries,
// evaluating in Kᵀ and decoding equals evaluating under snapshot
// semantics in the abstract model.
func TestRepresentationSystem(t *testing.T) {
	g := qgen.New(97)
	for i := 0; i < 120; i++ {
		spec := g.GenDB()
		q := g.GenQuery()
		sdb := spec.ToSnapshotDB()
		pdb := spec.ToPeriodDB()
		want, err := sdb.Eval(q)
		if err != nil {
			t.Fatalf("oracle eval: %v (query %s)", err, q)
		}
		got, err := pdb.Eval(q)
		if err != nil {
			t.Fatalf("period eval: %v (query %s)", err, q)
		}
		if !period.Dec(got, spec.Dom).Equal(want) {
			t.Fatalf("iteration %d: logical model disagrees with oracle\nquery: %s\nperiod result: %v", i, q, got)
		}
	}
}

// TestResultsAreCoalesced checks condition 1 of Def 4.5 on query outputs:
// annotations in results are always in K-coalesced normal form.
func TestResultsAreCoalesced(t *testing.T) {
	g := qgen.New(7)
	for i := 0; i < 60; i++ {
		spec := g.GenDB()
		q := g.GenQuery()
		pdb := spec.ToPeriodDB()
		res, err := pdb.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		alg := pdb.Algebra()
		for _, e := range res.Entries() {
			if !e.Ann.Equal(alg.Coalesce(e.Ann.Segs())) {
				t.Fatalf("non-coalesced annotation %v for %v (query %s)", e.Ann, e.Tuple, q)
			}
		}
	}
}

func TestTimesliceOperator(t *testing.T) {
	db := runningExample()
	works, _ := db.Relation("works")
	snap := works.Timeslice(8)
	if snap.Len() != 3 {
		t.Fatalf("snapshot at 8 has %d tuples", snap.Len())
	}
	if snap.Annotation(tuple.Tuple{str("Ann"), str("SP")}) != 1 {
		t.Error("Ann missing at 8")
	}
	snap0 := works.Timeslice(0)
	if snap0.Len() != 0 {
		t.Fatalf("snapshot at 0 has %d tuples", snap0.Len())
	}
}

func TestHomToSetSemantics(t *testing.T) {
	db := runningExample()
	works, _ := db.Relation("works")
	bAlg := telement.NewMAlgebra[bool](semiring.B, dom)
	bWorks := period.Hom[int64, bool](works, bAlg, semiring.NToB)
	ann := bWorks.Annotation(tuple.Tuple{str("Ann"), str("SP")})
	if ann.NumSegs() != 2 {
		t.Fatalf("Ann B-annotation = %v", ann)
	}
	// A multiplicity change invisible to 𝔹 must coalesce away.
	n := period.NewRelation(db.Algebra(), tuple.NewSchema("x"))
	n.AddPeriod(tuple.Tuple{tuple.Int(1)}, interval.New(0, 5), 2)
	n.AddPeriod(tuple.Tuple{tuple.Int(1)}, interval.New(5, 9), 1)
	b := period.Hom[int64, bool](n, bAlg, semiring.NToB)
	got := b.Annotation(tuple.Tuple{tuple.Int(1)})
	if got.NumSegs() != 1 || got.Segs()[0].Iv != interval.New(0, 9) {
		t.Fatalf("B-annotation = %v, want one segment [0,9)", got)
	}
}

func TestUnknownRelationAndBadQueries(t *testing.T) {
	db := runningExample()
	if _, err := db.Relation("nope"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := db.RelationSchema("nope"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := db.Eval(algebra.Select{Pred: algebra.Col("zzz"), In: algebra.Rel{Name: "works"}}); err == nil {
		t.Fatal("expected compile error")
	}
	if _, err := db.Eval(algebra.Agg{GroupBy: []string{"zzz"}, Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "c"}}, In: algebra.Rel{Name: "works"}}); err == nil {
		t.Fatal("expected group-by error")
	}
	if _, err := db.Eval(algebra.Agg{Aggs: []algebra.AggSpec{{Fn: krel.Sum, Arg: "zzz", As: "s"}}, In: algebra.Rel{Name: "works"}}); err == nil {
		t.Fatal("expected agg-arg error")
	}
}

func TestAggregationRequiresN(t *testing.T) {
	db := period.NewDB[bool](semiring.B, dom)
	db.CreateRelation("r", tuple.NewSchema("x"))
	q := algebra.Agg{Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "c"}}, In: algebra.Rel{Name: "r"}}
	if _, err := db.Eval(q); err == nil {
		t.Fatal("aggregation over 𝔹 must error")
	}
}

func TestGlobalAggOverEmptyRelation(t *testing.T) {
	db := period.NewDB[int64](semiring.N, dom)
	db.CreateRelation("r", tuple.NewSchema("x"))
	res, err := db.Eval(algebra.Agg{Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "c"}}, In: algebra.Rel{Name: "r"}})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Annotation(tuple.Tuple{tuple.Int(0)})
	want := db.Algebra().One()
	if !got.Equal(want) {
		t.Fatalf("count over empty relation = %v, want %v", got, want)
	}
}

func TestRelationAddAndString(t *testing.T) {
	db := runningExample()
	r := period.NewRelation(db.Algebra(), tuple.NewSchema("x"))
	r.Add(tuple.Tuple{tuple.Int(1)}, db.Algebra().Zero()) // no-op
	if r.Len() != 0 {
		t.Error("adding zero should be a no-op")
	}
	r.AddPeriod(tuple.Tuple{tuple.Int(1)}, interval.New(0, 5), 1)
	r.AddPeriod(tuple.Tuple{tuple.Int(1)}, interval.New(5, 9), 1)
	got := r.Annotation(tuple.Tuple{tuple.Int(1)})
	if got.NumSegs() != 1 {
		t.Fatalf("adjacent equal periods must merge: %v", got)
	}
	s := r.String()
	if !strings.Contains(s, "NT(x)") || !strings.Contains(s, "[0, 9) -> 1") {
		t.Errorf("String = %q", s)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a, b := runningExample(), runningExample()
	ra, _ := a.Relation("works")
	rb, _ := b.Relation("works")
	if !ra.Equal(rb) {
		t.Error("identical relations not Equal")
	}
	rb.AddPeriod(tuple.Tuple{str("Ann"), str("SP")}, interval.New(0, 1), 1)
	if ra.Equal(rb) {
		t.Error("different relations Equal")
	}
}

// TestUniqueEncodingAcrossEquivalentQueries: equivalent queries must
// produce syntactically identical period relations (the paper's unique
// encoding desideratum), e.g. σ_true(R) vs R ∪ ∅ vs R.
func TestUniqueEncodingAcrossEquivalentQueries(t *testing.T) {
	db := runningExample()
	base := algebra.Rel{Name: "works"}
	q1 := algebra.Select{Pred: algebra.BoolC(true), In: base}
	// works written as a union of two disjoint selections.
	q2 := algebra.Union{
		L: algebra.Select{Pred: algebra.Eq(algebra.Col("skill"), algebra.StrC("SP")), In: base},
		R: algebra.Select{Pred: algebra.Ne(algebra.Col("skill"), algebra.StrC("SP")), In: base},
	}
	r0, err := db.Eval(base)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := db.Eval(q1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Eval(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !r0.Equal(r1) || !r0.Equal(r2) {
		t.Fatalf("equivalent queries produced different encodings:\n%v\n%v\n%v", r0, r1, r2)
	}
}

func ExampleRelation_String() {
	alg := telement.NewMAlgebra[int64](semiring.N, interval.NewDomain(0, 24))
	r := period.NewRelation(alg, tuple.NewSchema("skill"))
	r.AddPeriod(tuple.Tuple{tuple.String_("SP")}, interval.New(3, 10), 1)
	fmt.Println(r)
	// Output:
	// NT(skill) {
	//   (SP) -> {[3, 10) -> 1}
	// }
}
