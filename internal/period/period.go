// Package period implements the paper's logical model (Sections 5–7):
// period K-relations, in which every tuple is annotated with a temporal
// K-element in K-coalesced normal form, i.e. an element of the period
// semiring Kᵀ. Queries are evaluated directly in Kᵀ with the semiring
// operations of Def 6.1, the monus of Thm 7.1 and the snapshot-reducible
// aggregation of Def 7.1 (computed over aligned intervals rather than
// single snapshots).
//
// Together with the encoding ENC_K of Def 6.3 and the timeslice operator
// of Def 6.2, the types here form a representation system for snapshot
// K-relations (Thm 6.6/7.3): the encoding is unique, snapshot-preserving,
// and queries commute with timeslice.
package period

import (
	"fmt"
	"sort"
	"strings"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/semiring"
	"snapk/internal/snapshot"
	"snapk/internal/telement"
	"snapk/internal/tuple"
)

// Entry is one tuple of a period K-relation together with its temporal
// K-element annotation.
type Entry[K comparable] struct {
	Tuple tuple.Tuple
	Ann   telement.Element[K]
}

// Relation is a period K-relation: a finite-support map from tuples to
// normalized temporal K-elements. Tuples whose annotation is 0Kᵀ are not
// stored, so the representation of every snapshot K-relation is unique
// (Lemma 6.4).
type Relation[K comparable] struct {
	alg    telement.MAlgebra[K]
	schema tuple.Schema
	ann    map[string]Entry[K]
}

// NewRelation returns an empty period K-relation.
func NewRelation[K comparable](alg telement.MAlgebra[K], schema tuple.Schema) *Relation[K] {
	return &Relation[K]{alg: alg, schema: schema, ann: make(map[string]Entry[K])}
}

// Schema returns the relation schema.
func (r *Relation[K]) Schema() tuple.Schema { return r.schema }

// Len returns the number of tuples with non-zero annotation.
func (r *Relation[K]) Len() int { return len(r.ann) }

// Annotation returns the temporal K-element of t (0Kᵀ if absent).
func (r *Relation[K]) Annotation(t tuple.Tuple) telement.Element[K] {
	if e, ok := r.ann[t.Key()]; ok {
		return e.Ann
	}
	return r.alg.Zero()
}

// Add merges ann into the annotation of t with +Kᵀ.
func (r *Relation[K]) Add(t tuple.Tuple, ann telement.Element[K]) {
	if ann.IsZero() {
		return
	}
	key := t.Key()
	if e, ok := r.ann[key]; ok {
		ann = r.alg.Plus(e.Ann, ann)
	}
	r.set(key, t, ann)
}

// AddPeriod merges the singleton element {iv ↦ k} into tuple t; it is the
// natural way to load interval-timestamped facts.
func (r *Relation[K]) AddPeriod(t tuple.Tuple, iv interval.Interval, k K) {
	r.Add(t, r.alg.Singleton(iv, k))
}

func (r *Relation[K]) set(key string, t tuple.Tuple, ann telement.Element[K]) {
	if ann.IsZero() {
		delete(r.ann, key)
		return
	}
	r.ann[key] = Entry[K]{Tuple: t, Ann: ann}
}

// Entries returns the support in deterministic (tuple-key) order.
func (r *Relation[K]) Entries() []Entry[K] {
	keys := make([]string, 0, len(r.ann))
	for k := range r.ann {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Entry[K], len(keys))
	for i, k := range keys {
		out[i] = r.ann[k]
	}
	return out
}

// Equal reports schema and annotation-wise equality. Because annotations
// are normalized, Equal decides snapshot-equivalence of the encoded
// snapshot relations (uniqueness, Def 4.5 condition 1).
func (r *Relation[K]) Equal(other *Relation[K]) bool {
	if !r.schema.Equal(other.schema) || len(r.ann) != len(other.ann) {
		return false
	}
	for key, e := range r.ann {
		oe, ok := other.ann[key]
		if !ok || !oe.Ann.Equal(e.Ann) {
			return false
		}
	}
	return true
}

// Timeslice returns τ_T(R) as a plain K-relation (Def 6.2).
func (r *Relation[K]) Timeslice(t interval.Time) *krel.Relation[K] {
	out := krel.New[K](r.alg.MK, r.schema)
	for _, e := range r.ann {
		out.Set(e.Tuple, r.alg.Timeslice(e.Ann, t))
	}
	return out
}

// String renders the relation, one "tuple -> element" line per tuple.
func (r *Relation[K]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%sT%v {\n", r.alg.K.Name(), r.schema)
	for _, e := range r.Entries() {
		fmt.Fprintf(&b, "  %v -> %v\n", e.Tuple, e.Ann)
	}
	b.WriteString("}")
	return b.String()
}

// Enc implements ENC_K (Def 6.3): it encodes a snapshot K-relation as a
// period K-relation by collecting, per tuple, the per-time-point
// annotations into singleton intervals and coalescing them.
func Enc[K comparable](alg telement.MAlgebra[K], r *snapshot.Relation[K]) *Relation[K] {
	out := NewRelation(alg, r.Schema())
	pairsPerTuple := make(map[string][]telement.Seg[K])
	tuples := make(map[string]tuple.Tuple)
	dom := r.Domain()
	for t := dom.Min; t < dom.Max; t++ {
		for _, e := range r.Timeslice(t).Entries() {
			key := e.Tuple.Key()
			if _, ok := tuples[key]; !ok {
				tuples[key] = e.Tuple
			}
			pairsPerTuple[key] = append(pairsPerTuple[key], telement.Seg[K]{Iv: interval.Point(t), Val: e.Ann})
		}
	}
	for key, pairs := range pairsPerTuple {
		out.set(key, tuples[key], alg.Coalesce(pairs))
	}
	return out
}

// Dec implements ENC_K⁻¹: it expands a period K-relation back into the
// snapshot K-relation it encodes.
func Dec[K comparable](r *Relation[K], dom interval.Domain) *snapshot.Relation[K] {
	out := snapshot.NewRelation(r.alg.MK, dom, r.schema)
	for _, e := range r.ann {
		for _, s := range e.Ann.Segs() {
			for t := s.Iv.Begin; t < s.Iv.End; t++ {
				out.AddAt(t, e.Tuple, s.Val)
			}
		}
	}
	return out
}

// Hom applies a semiring homomorphism to every annotation segment-wise
// and re-coalesces, producing a period K2-relation. Because τ commutes
// with homomorphisms, the result encodes the homomorphic image of the
// encoded snapshot relation.
func Hom[K1, K2 comparable](r *Relation[K1], target telement.MAlgebra[K2], h semiring.Hom[K1, K2]) *Relation[K2] {
	out := NewRelation(target, r.schema)
	for _, e := range r.ann {
		segs := e.Ann.Segs()
		pairs := make([]telement.Seg[K2], 0, len(segs))
		for _, s := range segs {
			pairs = append(pairs, telement.Seg[K2]{Iv: s.Iv, Val: h(s.Val)})
		}
		out.Add(e.Tuple, target.Coalesce(pairs))
	}
	return out
}

// DB is a period K-database with a query evaluator over Kᵀ.
type DB[K comparable] struct {
	alg  telement.MAlgebra[K]
	rels map[string]*Relation[K]
}

// NewDB returns an empty period K-database for the m-semiring sr over dom.
func NewDB[K comparable](sr semiring.MSemiring[K], dom interval.Domain) *DB[K] {
	return &DB[K]{alg: telement.NewMAlgebra(sr, dom), rels: make(map[string]*Relation[K])}
}

// Algebra returns the temporal-element algebra of the database.
func (db *DB[K]) Algebra() telement.MAlgebra[K] { return db.alg }

// Domain returns the time domain.
func (db *DB[K]) Domain() interval.Domain { return db.alg.Dom }

// CreateRelation registers an empty period relation under name.
func (db *DB[K]) CreateRelation(name string, schema tuple.Schema) *Relation[K] {
	r := NewRelation(db.alg, schema)
	db.rels[name] = r
	return r
}

// AddRelation registers an existing relation under name.
func (db *DB[K]) AddRelation(name string, r *Relation[K]) { db.rels[name] = r }

// Relation returns the relation registered under name.
func (db *DB[K]) Relation(name string) (*Relation[K], error) {
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("period: unknown relation %q", name)
	}
	return r, nil
}

// RelationSchema implements algebra.Catalog.
func (db *DB[K]) RelationSchema(name string) (tuple.Schema, error) {
	r, err := db.Relation(name)
	if err != nil {
		return tuple.Schema{}, err
	}
	return r.schema, nil
}

// Eval evaluates q over the period K-database with Kᵀ semantics. Because
// τ_T is an m-semiring homomorphism (Thm 6.3/7.2) and aggregation is
// defined snapshot-reducibly (Def 7.1), Dec(Eval(q)) equals evaluating q
// under snapshot semantics in the abstract model.
func (db *DB[K]) Eval(q algebra.Query) (*Relation[K], error) {
	switch n := q.(type) {
	case algebra.Rel:
		return db.Relation(n.Name)
	case algebra.Select:
		in, err := db.Eval(n.In)
		if err != nil {
			return nil, err
		}
		pred, err := algebra.Compile(n.Pred, in.schema)
		if err != nil {
			return nil, err
		}
		out := NewRelation(db.alg, in.schema)
		for _, e := range in.ann {
			if algebra.Truthy(pred(e.Tuple)) {
				out.Add(e.Tuple, e.Ann)
			}
		}
		return out, nil
	case algebra.Project:
		in, err := db.Eval(n.In)
		if err != nil {
			return nil, err
		}
		cols := make([]string, len(n.Exprs))
		fns := make([]algebra.Compiled, len(n.Exprs))
		for i, ne := range n.Exprs {
			c, err := algebra.Compile(ne.E, in.schema)
			if err != nil {
				return nil, err
			}
			cols[i] = ne.Name
			fns[i] = c
		}
		out := NewRelation(db.alg, tuple.NewSchema(cols...))
		for _, e := range in.ann {
			res := make(tuple.Tuple, len(fns))
			for i, f := range fns {
				res[i] = f(e.Tuple)
			}
			out.Add(res, e.Ann)
		}
		return out, nil
	case algebra.Join:
		l, err := db.Eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := db.Eval(n.R)
		if err != nil {
			return nil, err
		}
		schema := l.schema.Concat(r.schema, "r.")
		pred, err := algebra.Compile(n.Pred, schema)
		if err != nil {
			return nil, err
		}
		out := NewRelation(db.alg, schema)
		for _, le := range l.ann {
			for _, re := range r.ann {
				prod := db.alg.Times(le.Ann, re.Ann)
				if prod.IsZero() {
					continue
				}
				t := tuple.Concat(le.Tuple, re.Tuple)
				if algebra.Truthy(pred(t)) {
					out.Add(t, prod)
				}
			}
		}
		return out, nil
	case algebra.Union:
		l, err := db.Eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := db.Eval(n.R)
		if err != nil {
			return nil, err
		}
		out := NewRelation(db.alg, l.schema)
		for _, e := range l.ann {
			out.Add(e.Tuple, e.Ann)
		}
		for _, e := range r.ann {
			out.Add(e.Tuple, e.Ann)
		}
		return out, nil
	case algebra.Diff:
		l, err := db.Eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := db.Eval(n.R)
		if err != nil {
			return nil, err
		}
		out := NewRelation(db.alg, l.schema)
		for key, e := range l.ann {
			out.set(key, e.Tuple, db.alg.Monus(e.Ann, r.Annotation(e.Tuple)))
		}
		return out, nil
	case algebra.Agg:
		in, err := db.Eval(n.In)
		if err != nil {
			return nil, err
		}
		return db.aggregate(in, n)
	default:
		return nil, fmt.Errorf("period: unknown query node %T", q)
	}
}

// aggregate evaluates an Agg node in the logical model. It implements
// Def 7.1 over intervals: per group, the union of the annotation
// changepoints of the group's tuples partitions time into segments on
// which every aggregate is constant; the segment results are summed in
// Kᵀ and therefore coalesced. Only the ℕ instantiation is defined.
func (db *DB[K]) aggregate(in *Relation[K], n algebra.Agg) (*Relation[K], error) {
	nin, ok := any(in).(*Relation[int64])
	if !ok {
		return nil, fmt.Errorf("period: aggregation requires the ℕ semiring, have %s", db.alg.K.Name())
	}
	res, err := aggregateN(nin, n)
	if err != nil {
		return nil, err
	}
	return any(res).(*Relation[K]), nil
}

func aggregateN(in *Relation[int64], n algebra.Agg) (*Relation[int64], error) {
	schema := in.schema
	groupIdx := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		idx := schema.Index(g)
		if idx < 0 {
			return nil, fmt.Errorf("period: unknown group-by column %q", g)
		}
		groupIdx[i] = idx
	}
	cols := append([]string{}, n.GroupBy...)
	argIdx := make([]int, len(n.Aggs))
	for i, a := range n.Aggs {
		cols = append(cols, a.As)
		argIdx[i] = -1
		if a.Fn != krel.CountStar {
			idx := schema.Index(a.Arg)
			if idx < 0 {
				return nil, fmt.Errorf("period: unknown aggregation column %q", a.Arg)
			}
			argIdx[i] = idx
		}
	}
	alg := in.alg
	out := NewRelation(alg, tuple.NewSchema(cols...))

	type member struct {
		tuple tuple.Tuple
		ann   telement.Element[int64]
	}
	groups := make(map[string][]member)
	groupTuples := make(map[string]tuple.Tuple)
	for _, e := range in.ann {
		g := e.Tuple.Project(groupIdx)
		key := g.Key()
		if _, ok := groupTuples[key]; !ok {
			groupTuples[key] = g
		}
		groups[key] = append(groups[key], member{tuple: e.Tuple, ann: e.Ann})
	}
	global := len(n.GroupBy) == 0
	if global && len(groups) == 0 {
		groups[""] = nil
		groupTuples[""] = tuple.Tuple{}
	}
	for key, members := range groups {
		// Endpoints at which any member's annotation can change.
		pts := make([]interval.Time, 0, 2*len(members)+2)
		if global {
			// The whole domain must be covered so gaps produce rows
			// (count 0 / NULL) — avoiding the AG bug by construction.
			pts = append(pts, alg.Dom.Min, alg.Dom.Max)
		}
		for _, m := range members {
			for _, s := range m.ann.Segs() {
				pts = append(pts, s.Iv.Begin, s.Iv.End)
			}
		}
		pts = interval.DedupTimes(pts)
		for i := 0; i+1 < len(pts); i++ {
			seg := interval.Interval{Begin: pts[i], End: pts[i+1]}
			states := make([]*krel.AggState, len(n.Aggs))
			for j, a := range n.Aggs {
				states[j] = krel.NewAggState(a.Fn)
			}
			alive := false
			for _, m := range members {
				mult := alg.Timeslice(m.ann, seg.Begin)
				if mult == 0 {
					continue
				}
				alive = true
				for j := range n.Aggs {
					var arg tuple.Value
					if argIdx[j] >= 0 {
						arg = m.tuple[argIdx[j]]
					}
					states[j].AddValue(arg, mult)
				}
			}
			if !alive && !global {
				continue // no group at these snapshots
			}
			row := groupTuples[key].Clone()
			for _, st := range states {
				row = append(row, st.Result())
			}
			out.Add(row, alg.Singleton(seg, 1))
		}
	}
	return out, nil
}
