// Public-API fault-domain tests: cancellation on the sequential path,
// the per-query resource governor through SetQueryLimits, and the
// database/sql error semantics of the cursor after a mid-stream
// failure.
package snapk_test

import (
	"context"
	"errors"
	"testing"
	"time"

	snapk "snapk"
)

// bigFaultDB builds a single-table database large enough that queries
// cross every governor checkpoint and batch boundary.
func bigFaultDB(t *testing.T) *snapk.DB {
	t.Helper()
	db := snapk.New(0, 5000)
	tbl, err := db.CreateTable("t", "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4000; i++ {
		if err := tbl.Insert(i%4900, i%4900+10, i); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// Regression: the sequential path (parallelism unset) must honor the
// query context. Canceling mid-stream ends the cursor with
// context.Canceled through Err — not a silently truncated clean stream.
func TestSeqCancelMidStream(t *testing.T) {
	db := bigFaultDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryRows(ctx, `SELECT x FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no first row")
	}
	cancel()
	n := 1
	for rows.Next() { // at most the already-buffered batch drains
		n++
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
	if n >= 4000 {
		t.Fatal("cancellation did not stop the sequential stream")
	}
}

// The row limit ends the query with ErrRowLimit on both executors, and
// after the failure Scan reports the stream error (database/sql
// semantics) while Values returns nil.
func TestQueryLimitsRowLimit(t *testing.T) {
	for _, par := range []int{0, 4} {
		db := bigFaultDB(t).
			SetParallelism(par).
			SetQueryLimits(snapk.QueryLimits{RowLimit: 10})
		rows, err := db.QueryRows(context.Background(), `SELECT x FROM t`)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if !errors.Is(rows.Err(), snapk.ErrRowLimit) {
			t.Fatalf("par=%d: Err = %v, want ErrRowLimit", par, rows.Err())
		}
		if n >= 4000 {
			t.Fatalf("par=%d: limit did not stop the stream", par)
		}
		var x int64
		if err := rows.Scan(&x); !errors.Is(err, snapk.ErrRowLimit) {
			t.Fatalf("par=%d: Scan after stream error = %v, want the stream error", par, err)
		}
		if v := rows.Values(); v != nil {
			t.Fatalf("par=%d: Values after stream error = %v, want nil", par, v)
		}
		rows.Close()
		// The error survives Close: a late Err (or Scan) still reports it.
		if !errors.Is(rows.Err(), snapk.ErrRowLimit) {
			t.Fatalf("par=%d: Err after Close = %v, want ErrRowLimit", par, rows.Err())
		}
	}
}

// A one-byte memory budget trips the join build's tracked state with
// ErrMemBudget — surfaced at QueryRows (construction) or through Err,
// but never as a clean complete result.
func TestQueryLimitsMemBudget(t *testing.T) {
	for _, par := range []int{0, 4} {
		db := factoryDB(t).
			SetParallelism(par).
			SetQueryLimits(snapk.QueryLimits{MemBudget: 1})
		const sql = `SEQ VT (SELECT w.name AS n FROM works w JOIN assign a ON w.skill = a.skill)`
		rows, err := db.QueryRows(context.Background(), sql)
		if err == nil {
			for rows.Next() {
			}
			err = rows.Err()
			rows.Close()
		}
		if !errors.Is(err, snapk.ErrMemBudget) {
			t.Fatalf("par=%d: err = %v, want ErrMemBudget", par, err)
		}
	}
}

// An expired per-query deadline surfaces as context.DeadlineExceeded on
// both executors.
func TestQueryLimitsDeadline(t *testing.T) {
	for _, par := range []int{0, 4} {
		db := bigFaultDB(t).
			SetParallelism(par).
			SetQueryLimits(snapk.QueryLimits{Timeout: time.Nanosecond})
		rows, err := db.QueryRows(context.Background(), `SELECT x FROM t`)
		if err == nil {
			for rows.Next() {
			}
			err = rows.Err()
			rows.Close()
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("par=%d: err = %v, want DeadlineExceeded", par, err)
		}
	}
}

// Limits also govern the materializing Query entry point: the Seq
// approach propagates the typed error instead of returning a truncated
// result.
func TestQueryLimitsMaterializedPath(t *testing.T) {
	db := bigFaultDB(t).SetQueryLimits(snapk.QueryLimits{RowLimit: 10})
	_, err := db.Query(`SELECT x FROM t`)
	if !errors.Is(err, snapk.ErrRowLimit) {
		t.Fatalf("Query err = %v, want ErrRowLimit", err)
	}
}
