package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snapk/internal/harness"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Exp != "all" || cfg.Scale.Name != "full" || cfg.JSONPath != "" {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

func TestParseFlagsQuickAndRuns(t *testing.T) {
	cfg, err := parseFlags([]string{"-quick", "-runs", "7", "-exp", "sweep"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scale.Name != "quick" || cfg.Scale.Runs != 7 || cfg.Exp != "sweep" {
		t.Fatalf("flags not applied: %+v", cfg)
	}
}

// -help must print the usage text and exit 0.
func TestRunHelpPrintsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h: exit %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "-exp") || !strings.Contains(errb.String(), "-json") {
		t.Fatalf("usage text incomplete:\n%s", errb.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "nope", "-quick"}, &out, &errb); code != 2 {
		t.Fatalf("unknown experiment: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Fatalf("missing diagnostic: %s", errb.String())
	}
	// The diagnostic must list the valid experiment names.
	for _, name := range []string{"sweep", "diff", "obs", "all"} {
		if !strings.Contains(errb.String(), name) {
			t.Fatalf("diagnostic does not list %q: %s", name, errb.String())
		}
	}
}

func TestExperimentRegistryCoversDocumentedIDs(t *testing.T) {
	var out bytes.Buffer
	exps := experiments(&out, harness.Quick, nil)
	ids := make(map[string]bool)
	for _, e := range exps {
		ids[e.Name] = true
	}
	for _, want := range []string{"fig1", "table1", "fig5", "table2", "table3emp", "table3tpc", "ablation", "scaling", "sweep", "parstream", "diff", "obs", "batch", "chaos", "opt"} {
		if !ids[want] {
			t.Fatalf("experiment %q missing from registry", want)
		}
	}
}

// The -json output is the machine-readable contract downstream bench
// tooling parses; pin its schema on a real sweep run.
func TestRunSweepJSONSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	sc := harness.Quick
	sc.Fig5Sizes = []int{200} // keep the test fast
	sc.Runs = 1
	rep := harness.NewReport(sc)
	var out bytes.Buffer
	if err := harness.Sweep(&out, sc, rep); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got harness.Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if got.Scale != "quick" || got.Workers < 2 {
		t.Fatalf("report header wrong: %+v", got)
	}
	if len(got.Metrics) == 0 {
		t.Fatal("no metrics recorded")
	}
	names := make(map[string]bool)
	for _, m := range got.Metrics {
		if m.Experiment != "sweep" {
			t.Fatalf("metric experiment = %q, want sweep", m.Experiment)
		}
		if m.Name == "" || m.Seconds < 0 {
			t.Fatalf("malformed metric: %+v", m)
		}
		if m.Rows <= 0 {
			t.Fatalf("sweep metrics must carry output cardinality: %+v", m)
		}
		if m.AllocsPerOp <= 0 {
			t.Fatalf("sweep metrics must carry allocation counts: %+v", m)
		}
		names[m.Name] = true
	}
	for _, want := range []string{
		"coalesce-blocking/sorted/rows=200",
		"coalesce-streaming/sorted/rows=200",
		"agg-streaming/sorted/rows=200",
	} {
		if !names[want] {
			t.Fatalf("metric %q missing; got %v", want, names)
		}
	}
}

// The parstream experiment feeds the CI smoke and the ROADMAP
// performance trajectory; pin its -json metric naming so downstream
// parsing does not silently break.
func TestRunParStreamJSONSchema(t *testing.T) {
	sc := harness.Quick
	sc.Fig5Sizes = []int{200} // keep the test fast
	sc.Runs = 1
	rep := harness.NewReport(sc)
	var out bytes.Buffer
	if err := harness.ParStream(&out, sc, rep); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, m := range rep.Metrics {
		if m.Experiment != "parstream" {
			t.Fatalf("metric experiment = %q, want parstream", m.Experiment)
		}
		if m.Name == "" || m.Seconds < 0 {
			t.Fatalf("malformed metric: %+v", m)
		}
		if m.Rows <= 0 {
			t.Fatalf("parstream metrics must carry output cardinality: %+v", m)
		}
		names[m.Name] = true
	}
	w := harness.DefaultWorkers
	for _, want := range []string{
		fmt.Sprintf("coalesce-par-blocking-x%d/sorted/rows=200", w),
		fmt.Sprintf("coalesce-par-stream-x%d/sorted/rows=200", w),
		fmt.Sprintf("agg-par-blocking-x%d/sorted/rows=200", w),
		fmt.Sprintf("agg-par-stream-x%d/sorted/rows=200", w),
		"coalesce-seq-stream/sorted/rows=200",
		"agg-seq-stream/sorted/rows=200",
	} {
		if !names[want] {
			t.Fatalf("metric %q missing; got %v", want, names)
		}
	}
	// Paired variants must agree on output cardinality: the streaming
	// and blocking parallel sweeps compute the same multiset.
	var rows []int64
	for _, m := range rep.Metrics {
		if strings.HasPrefix(m.Name, "coalesce-") {
			rows = append(rows, m.Rows)
		}
	}
	for _, r := range rows {
		if r != rows[0] {
			t.Fatalf("coalesce variants disagree on output cardinality: %v", rows)
		}
	}
}

// The diff experiment backs the streaming-difference acceptance
// numbers and the CI smoke; pin its -json metric naming so downstream
// parsing does not silently break.
func TestRunDiffJSONSchema(t *testing.T) {
	sc := harness.Quick
	sc.Fig5Sizes = []int{200} // keep the test fast
	sc.Runs = 1
	rep := harness.NewReport(sc)
	var out bytes.Buffer
	if err := harness.Diff(&out, sc, rep); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, m := range rep.Metrics {
		if m.Experiment != "diff" {
			t.Fatalf("metric experiment = %q, want diff", m.Experiment)
		}
		if m.Name == "" || m.Seconds < 0 {
			t.Fatalf("malformed metric: %+v", m)
		}
		if m.Rows <= 0 {
			t.Fatalf("diff metrics must carry output cardinality: %+v", m)
		}
		names[m.Name] = true
	}
	w := harness.DefaultWorkers
	for _, want := range []string{
		"diff-blocking/sorted/rows=200",
		"diff-streaming/sorted/rows=200",
		"diff-blocking/unsorted/rows=200",
		"diff-stream-enforced/unsorted/rows=200",
		fmt.Sprintf("diff-par-blocking-x%d/sorted/rows=200", w),
		fmt.Sprintf("diff-par-stream-x%d/sorted/rows=200", w),
	} {
		if !names[want] {
			t.Fatalf("metric %q missing; got %v", want, names)
		}
	}
	// Every physical variant computes the same multiset, so all six must
	// agree on output cardinality.
	var rows []int64
	for _, m := range rep.Metrics {
		rows = append(rows, m.Rows)
	}
	for _, r := range rows {
		if r != rows[0] {
			t.Fatalf("diff variants disagree on output cardinality: %v", rows)
		}
	}
}

// The batch experiment backs the batch-vs-per-row acceptance numbers
// and the CI smoke; pin its -json metric naming (paired perrow/batch
// entries with a speedup extra) so downstream parsing does not silently
// break.
func TestRunBatchJSONSchema(t *testing.T) {
	sc := harness.Quick
	sc.Fig5Sizes = []int{200} // keep the test fast
	sc.Runs = 1
	rep := harness.NewReport(sc)
	var out bytes.Buffer
	if err := harness.Batch(&out, sc, rep); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, m := range rep.Metrics {
		if m.Experiment != "batch" {
			t.Fatalf("metric experiment = %q, want batch", m.Experiment)
		}
		if m.Name == "" || m.Seconds < 0 {
			t.Fatalf("malformed metric: %+v", m)
		}
		if m.Rows <= 0 {
			t.Fatalf("batch metrics must carry output cardinality: %+v", m)
		}
		if strings.Contains(m.Name, "/batch/") {
			if _, ok := m.Extra["speedup"]; !ok {
				t.Fatalf("batch-drive metric must carry the speedup extra: %+v", m)
			}
		}
		names[m.Name] = true
	}
	w := harness.DefaultWorkers
	for _, want := range []string{
		"filter-project/perrow/rows=200",
		"filter-project/batch/rows=200",
		"coalesce-streaming/perrow/rows=200",
		"coalesce-streaming/batch/rows=200",
		"agg-streaming/batch/rows=200",
		"diff-streaming/batch/rows=200",
		fmt.Sprintf("coalesce-parallel-x%d/perrow/rows=200", w),
		fmt.Sprintf("coalesce-parallel-x%d/batch/rows=200", w),
	} {
		if !names[want] {
			t.Fatalf("metric %q missing; got %v", want, names)
		}
	}
	// The two drives of one variant compute the same multiset, so the
	// perrow/batch pair must agree on output cardinality.
	cards := make(map[string]int64)
	for _, m := range rep.Metrics {
		base := strings.Replace(strings.Replace(m.Name, "/perrow/", "/", 1), "/batch/", "/", 1)
		if prev, ok := cards[base]; ok && prev != m.Rows {
			t.Fatalf("drives of %s disagree on cardinality: %d vs %d", base, prev, m.Rows)
		} else {
			cards[base] = m.Rows
		}
	}
}

// An end-to-end quick run of the fig1 experiment through run(),
// asserting exit code, stdout banner, and JSON side effect.
func TestRunFig1WithJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "fig1", "-quick", "-json", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "==== fig1 (scale: quick) ====") {
		t.Fatalf("missing banner:\n%s", out.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("-json file not written: %v", err)
	}
}

// The chaos experiment backs the fault-domain acceptance numbers
// (governor overhead within noise); pin its -json metric naming (paired
// ungoverned/governed entries with an overhead extra) so downstream
// parsing does not silently break.
func TestRunChaosJSONSchema(t *testing.T) {
	sc := harness.Quick
	sc.Fig5Sizes = []int{200} // keep the test fast
	sc.Runs = 1
	rep := harness.NewReport(sc)
	var out bytes.Buffer
	if err := harness.Chaos(&out, sc, rep); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, m := range rep.Metrics {
		if m.Experiment != "chaos" {
			t.Fatalf("metric experiment = %q, want chaos", m.Experiment)
		}
		if m.Name == "" || m.Seconds < 0 {
			t.Fatalf("malformed metric: %+v", m)
		}
		if m.Rows <= 0 {
			t.Fatalf("chaos metrics must carry output cardinality: %+v", m)
		}
		if strings.Contains(m.Name, "/governed/") {
			if _, ok := m.Extra["overhead"]; !ok {
				t.Fatalf("governed metric must carry the overhead extra: %+v", m)
			}
		}
		names[m.Name] = true
	}
	w := harness.DefaultWorkers
	for _, want := range []string{
		"filter-project/ungoverned/rows=200",
		"filter-project/governed/rows=200",
		"coalesce-streaming/governed/rows=200",
		"agg-streaming/governed/rows=200",
		"diff-streaming/governed/rows=200",
		fmt.Sprintf("coalesce-parallel-x%d/ungoverned/rows=200", w),
		fmt.Sprintf("coalesce-parallel-x%d/governed/rows=200", w),
	} {
		if !names[want] {
			t.Fatalf("metric %q missing; got %v", want, names)
		}
	}
	// Governing with limits that never trip must not change results:
	// the ungoverned/governed pair agrees on output cardinality.
	cards := make(map[string]int64)
	for _, m := range rep.Metrics {
		base := strings.Replace(strings.Replace(m.Name, "/ungoverned/", "/", 1), "/governed/", "/", 1)
		if prev, ok := cards[base]; ok && prev != m.Rows {
			t.Fatalf("runs of %s disagree on cardinality: %d vs %d", base, prev, m.Rows)
		} else {
			cards[base] = m.Rows
		}
	}
}

// The opt experiment backs the planner ablation acceptance numbers; pin
// its -json metric naming (experiment/config/rows triplets over the full
// knob grid) and that every knob configuration of a workload agrees on
// output cardinality — the knobs are performance-only.
func TestRunOptJSONSchema(t *testing.T) {
	sc := harness.Quick
	sc.Fig5Sizes = []int{200} // keep the test fast
	sc.Runs = 1
	rep := harness.NewReport(sc)
	var out bytes.Buffer
	if err := harness.Opt(&out, sc, rep); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, m := range rep.Metrics {
		if m.Experiment != "opt" {
			t.Fatalf("metric experiment = %q, want opt", m.Experiment)
		}
		if m.Name == "" || m.Seconds < 0 || m.Rows <= 0 {
			t.Fatalf("malformed metric: %+v", m)
		}
		names[m.Name] = true
	}
	for _, workload := range []string{"coalesce", "join", "small-par"} {
		for _, cfg := range []string{"all-off", "all-on", "no-pushdown", "no-prune", "no-presize", "no-adaptive"} {
			want := fmt.Sprintf("%s/%s/rows=200", workload, cfg)
			if !names[want] {
				t.Fatalf("metric %q missing; got %v", want, names)
			}
		}
	}
	// Every knob configuration computes the same windowed result.
	cards := make(map[string]int64)
	for _, m := range rep.Metrics {
		workload := m.Name[:strings.Index(m.Name, "/")]
		if prev, ok := cards[workload]; ok && prev != m.Rows {
			t.Fatalf("configs of %s disagree on cardinality: %d vs %d (%s)", workload, prev, m.Rows, m.Name)
		} else {
			cards[workload] = m.Rows
		}
	}
}
