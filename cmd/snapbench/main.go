// Command snapbench regenerates every table and figure of the paper's
// evaluation (Section 10) plus the §9 ablations, over the synthetic
// stand-in datasets documented in DESIGN.md:
//
//	snapbench -exp fig1       Figure 1(b,c): running-example results
//	snapbench -exp table1     Table 1: measured bug taxonomy per approach
//	snapbench -exp fig5       Figure 5: coalescing runtime vs input size
//	snapbench -exp table2     Table 2: result row counts per query
//	snapbench -exp table3emp  Table 3 (Employee): Seq vs Nat runtimes
//	snapbench -exp table3tpc  Table 3 (TPC-BiH): Seq vs Nat at two scales
//	snapbench -exp ablation   §9 ablations (E7, E8, E9)
//	snapbench -exp scaling    parallel exchange executor speedup at 1/2/4/8 workers
//	snapbench -exp all        everything above
//
// -quick shrinks datasets for a fast smoke run; -runs sets the number of
// repetitions per measurement (the median is reported); -json writes the
// per-experiment median runtimes as machine-readable JSON to the given
// path (e.g. BENCH_2026-07.json) so the performance trajectory can be
// tracked across PRs.
package main

import (
	"flag"
	"fmt"
	"os"

	"snapk/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1|table1|fig5|table2|table3emp|table3tpc|ablation|scaling|all")
	quick := flag.Bool("quick", false, "use small datasets (smoke run)")
	runs := flag.Int("runs", 0, "repetitions per measurement (0 = scale default)")
	jsonPath := flag.String("json", "", "write per-experiment medians as JSON to this path")
	flag.Parse()

	sc := harness.Full
	if *quick {
		sc = harness.Quick
	}
	if *runs > 0 {
		sc.Runs = *runs
	}
	rep := harness.NewReport(sc)

	type experiment struct {
		name string
		run  func() error
	}
	all := []experiment{
		{"fig1", func() error { return harness.Fig1(os.Stdout) }},
		{"table1", func() error { return harness.Table1(os.Stdout) }},
		{"fig5", func() error { return harness.Fig5(os.Stdout, sc, rep) }},
		{"table2", func() error { return harness.Table2(os.Stdout, sc) }},
		{"table3emp", func() error { return harness.Table3Employees(os.Stdout, sc, rep) }},
		{"table3tpc", func() error { return harness.Table3TPC(os.Stdout, sc, rep) }},
		{"ablation", func() error { return harness.Ablations(os.Stdout, sc, rep) }},
		{"scaling", func() error { return harness.Scaling(os.Stdout, sc, rep) }},
	}
	ran := false
	for _, e := range all {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		fmt.Printf("==== %s (scale: %s) ====\n", e.name, sc.Name)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "snapbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		if err := rep.WriteJSON(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d metrics to %s\n", len(rep.Metrics), *jsonPath)
	}
}
