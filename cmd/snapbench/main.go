// Command snapbench regenerates every table and figure of the paper's
// evaluation (Section 10) plus the §9 ablations, over the synthetic
// stand-in datasets documented in DESIGN.md:
//
//	snapbench -exp fig1       Figure 1(b,c): running-example results
//	snapbench -exp table1     Table 1: measured bug taxonomy per approach
//	snapbench -exp fig5       Figure 5: coalescing runtime vs input size
//	snapbench -exp table2     Table 2: result row counts per query
//	snapbench -exp table3emp  Table 3 (Employee): Seq vs Nat runtimes
//	snapbench -exp table3tpc  Table 3 (TPC-BiH): Seq vs Nat at two scales
//	snapbench -exp ablation   §9 ablations (E7, E8, E9)
//	snapbench -exp scaling    parallel exchange executor speedup at 1/2/4/8 workers
//	snapbench -exp sweep      streaming vs materializing vs partitioned sweep operators
//	snapbench -exp parstream  parallel streaming sweeps (ordered exchange) vs parallel blocking
//	snapbench -exp diff       streaming merge-based difference vs the blocking fused diff sweep
//	snapbench -exp obs        EXPLAIN ANALYZE collector overhead, off vs on
//	snapbench -exp batch      batch-at-a-time (NextBatch) drive vs the per-row Volcano ablation
//	snapbench -exp chaos      resource-governor overhead, ungoverned vs governed (limits never trip)
//	snapbench -exp opt        cost-aware planner knob ablation (pushdown/pruning/pre-sizing/adaptive workers)
//	snapbench -exp all        everything above
//
// -quick shrinks datasets for a fast smoke run; -runs sets the number of
// repetitions per measurement (the median is reported); -json writes the
// per-experiment median runtimes as machine-readable JSON to the given
// path (e.g. BENCH_2026-07.json) so the performance trajectory can be
// tracked across PRs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"snapk/internal/harness"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// config is the parsed command line of one snapbench invocation.
type config struct {
	Exp      string
	Scale    harness.Scale
	JSONPath string
}

// parseFlags parses the command line into a config. It is separated
// from run so tests can assert flag handling without executing
// experiments. Flag diagnostics and -help usage go to out.
func parseFlags(args []string, out io.Writer) (config, error) {
	fs := flag.NewFlagSet("snapbench", flag.ContinueOnError)
	fs.SetOutput(out)
	exp := fs.String("exp", "all", "experiment: fig1|table1|fig5|table2|table3emp|table3tpc|ablation|scaling|sweep|parstream|diff|obs|batch|chaos|opt|all")
	quick := fs.Bool("quick", false, "use small datasets (smoke run)")
	runs := fs.Int("runs", 0, "repetitions per measurement (0 = scale default)")
	jsonPath := fs.String("json", "", "write per-experiment medians as JSON to this path")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	sc := harness.Full
	if *quick {
		sc = harness.Quick
	}
	if *runs > 0 {
		sc.Runs = *runs
	}
	return config{Exp: *exp, Scale: sc, JSONPath: *jsonPath}, nil
}

// experiment is one named entry of the experiment registry.
type experiment struct {
	Name string
	Run  func() error
}

// experiments returns the experiment registry in execution order; every
// experiment writes its tables to w and its medians into rep.
func experiments(w io.Writer, sc harness.Scale, rep *harness.Report) []experiment {
	return []experiment{
		{"fig1", func() error { return harness.Fig1(w) }},
		{"table1", func() error { return harness.Table1(w) }},
		{"fig5", func() error { return harness.Fig5(w, sc, rep) }},
		{"table2", func() error { return harness.Table2(w, sc) }},
		{"table3emp", func() error { return harness.Table3Employees(w, sc, rep) }},
		{"table3tpc", func() error { return harness.Table3TPC(w, sc, rep) }},
		{"ablation", func() error { return harness.Ablations(w, sc, rep) }},
		{"scaling", func() error { return harness.Scaling(w, sc, rep) }},
		{"sweep", func() error { return harness.Sweep(w, sc, rep) }},
		{"parstream", func() error { return harness.ParStream(w, sc, rep) }},
		{"diff", func() error { return harness.Diff(w, sc, rep) }},
		{"obs", func() error { return harness.Obs(w, sc, rep) }},
		{"batch", func() error { return harness.Batch(w, sc, rep) }},
		{"chaos", func() error { return harness.Chaos(w, sc, rep) }},
		{"opt", func() error { return harness.Opt(w, sc, rep) }},
	}
}

// run executes the selected experiments, returning the process exit
// code. All output goes through the given writers, which is what makes
// the command testable.
func run(args []string, stdout, stderr io.Writer) int {
	cfg, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0 // the flag package already printed the usage text
	}
	if err != nil {
		return 2 // diagnostics already written by the flag package
	}
	rep := harness.NewReport(cfg.Scale)
	exps := experiments(stdout, cfg.Scale, rep)
	ran := false
	for _, e := range exps {
		if cfg.Exp != "all" && cfg.Exp != e.Name {
			continue
		}
		ran = true
		fmt.Fprintf(stdout, "==== %s (scale: %s) ====\n", e.Name, cfg.Scale.Name)
		if err := e.Run(); err != nil {
			fmt.Fprintf(stderr, "snapbench: %s: %v\n", e.Name, err)
			return 1
		}
		fmt.Fprintln(stdout)
	}
	if !ran {
		names := make([]string, len(exps))
		for i, e := range exps {
			names[i] = e.Name
		}
		fmt.Fprintf(stderr, "snapbench: unknown experiment %q (valid: %s, all)\n",
			cfg.Exp, strings.Join(names, ", "))
		return 2
	}
	if cfg.JSONPath != "" {
		if err := rep.WriteJSON(cfg.JSONPath); err != nil {
			fmt.Fprintf(stderr, "snapbench: writing %s: %v\n", cfg.JSONPath, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d metrics to %s\n", len(rep.Metrics), cfg.JSONPath)
	}
	return 0
}
