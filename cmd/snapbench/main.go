// Command snapbench regenerates every table and figure of the paper's
// evaluation (Section 10) plus the §9 ablations, over the synthetic
// stand-in datasets documented in DESIGN.md:
//
//	snapbench -exp fig1       Figure 1(b,c): running-example results
//	snapbench -exp table1     Table 1: measured bug taxonomy per approach
//	snapbench -exp fig5       Figure 5: coalescing runtime vs input size
//	snapbench -exp table2     Table 2: result row counts per query
//	snapbench -exp table3emp  Table 3 (Employee): Seq vs Nat runtimes
//	snapbench -exp table3tpc  Table 3 (TPC-BiH): Seq vs Nat at two scales
//	snapbench -exp ablation   §9 ablations (E7, E8, E9)
//	snapbench -exp all        everything above
//
// -quick shrinks datasets for a fast smoke run; -runs sets the number of
// repetitions per measurement (the median is reported).
package main

import (
	"flag"
	"fmt"
	"os"

	"snapk/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1|table1|fig5|table2|table3emp|table3tpc|ablation|all")
	quick := flag.Bool("quick", false, "use small datasets (smoke run)")
	runs := flag.Int("runs", 0, "repetitions per measurement (0 = scale default)")
	flag.Parse()

	sc := harness.Full
	if *quick {
		sc = harness.Quick
	}
	if *runs > 0 {
		sc.Runs = *runs
	}

	type experiment struct {
		name string
		run  func() error
	}
	all := []experiment{
		{"fig1", func() error { return harness.Fig1(os.Stdout) }},
		{"table1", func() error { return harness.Table1(os.Stdout) }},
		{"fig5", func() error { return harness.Fig5(os.Stdout, sc) }},
		{"table2", func() error { return harness.Table2(os.Stdout, sc) }},
		{"table3emp", func() error { return harness.Table3Employees(os.Stdout, sc) }},
		{"table3tpc", func() error { return harness.Table3TPC(os.Stdout, sc) }},
		{"ablation", func() error { return harness.Ablations(os.Stdout, sc) }},
	}
	ran := false
	for _, e := range all {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		fmt.Printf("==== %s (scale: %s) ====\n", e.name, sc.Name)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "snapbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
