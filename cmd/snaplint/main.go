// Command snaplint runs the repo-specific invariant analyzers over the
// given package patterns and exits non-zero on findings.
//
// Usage:
//
//	go run ./cmd/snaplint ./...
//	go run ./cmd/snaplint -list
//
// The suite and the suppression-comment syntax are documented in the
// README ("Invariants & linting") and in package snapk/internal/lint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"snapk/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snaplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.NewLoader().Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := lint.RunAnalyzers(pkgs, lint.Analyzers())
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "snaplint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
