package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRealTreeClean pins the acceptance bar: the full analyzer suite
// over the real repository reports nothing — every historical finding
// is fixed or carries a justified suppression.
func TestRealTreeClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// snapk/... resolves the whole module regardless of the test's
	// working directory.
	if code := run([]string{"snapk/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("snaplint exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("unexpected findings:\n%s", stdout.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("snaplint -list exit %d: %s", code, stderr.String())
	}
	for _, name := range []string{"iterclose", "rowretain", "ctxselect", "orderedchan", "keyalloc"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, stdout.String())
		}
	}
}
