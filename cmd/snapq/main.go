// Command snapq is the interactive face of the middleware: it loads one
// of the built-in temporal datasets and evaluates a snapshot SQL query
// against it, printing the period-encoded result.
//
//	snapq -data factory -sql "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')"
//	snapq -data employees -query agg-1 -approach seq
//	snapq -data tpcbih -query Q5 -limit 20
//	snapq -data employees -query diff-2 -approach nat-ip   # observe the BD bug
//	snapq -data factory -explain -sql "SEQ VT (SELECT count(*) AS cnt FROM works)"
//	snapq -data employees -query join-1 -approach seq-par  # parallel exchange executor
//	snapq -data employees -query join-1 -stream -limit 0   # stream rows as they arrive
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"snapk/internal/algebra"
	"snapk/internal/csvio"
	"snapk/internal/dataset"
	"snapk/internal/engine"
	"snapk/internal/harness"
	"snapk/internal/interval"
	"snapk/internal/rewrite"
	"snapk/internal/sqlfe"
	"snapk/internal/workload"
)

func main() {
	data := flag.String("data", "factory", "dataset: factory|employees|tpcbih|csv")
	scale := flag.Float64("scale", 1, "dataset scale multiplier")
	load := flag.String("load", "", "with -data csv: comma-separated name=path.csv table sources")
	domain := flag.String("domain", "0,1000000", "with -data csv: time domain min,max")
	sql := flag.String("sql", "", "snapshot SQL to run (SEQ VT optional)")
	queryID := flag.String("query", "", "run a named workload query (join-1..diff-2, Q1..Q19)")
	approach := flag.String("approach", "seq", "seq|seq-naive|seq-mat|seq-par|nat-ip|nat-align")
	limit := flag.Int("limit", 50, "maximum rows to print (0 = all)")
	explain := flag.Bool("explain", false, "print the rewritten plan instead of executing")
	stream := flag.Bool("stream", false, "print rows as the pipeline produces them instead of materializing and sorting (seq approaches only)")
	out := flag.String("out", "", "write the result as CSV to this file instead of printing")
	flag.Parse()

	var db *engine.DB
	var defaultWorkload []workload.Query
	if *data == "csv" {
		db = loadCSVTables(*load, *domain)
	} else {
		db, defaultWorkload = loadDataset(*data, *scale)
	}

	var q algebra.Query
	var err error
	switch {
	case *sql != "":
		q, err = sqlfe.ParseAndTranslate(*sql, db)
	case *queryID != "":
		wq, ok := workload.ByID(defaultWorkload, *queryID)
		if !ok {
			fail(fmt.Errorf("unknown workload query %q for dataset %s", *queryID, *data))
		}
		fmt.Printf("-- %s: %s\n", wq.ID, wq.Description)
		q, err = wq.Translate(db)
	default:
		fail(fmt.Errorf("provide -sql or -query; see -help"))
	}
	if err != nil {
		fail(err)
	}

	if *explain {
		p, err := rewrite.Rewrite(q, db, rewrite.Options{Mode: rewrite.ModeOptimized})
		if err != nil {
			fail(err)
		}
		fmt.Println(p)
		return
	}

	ap, err := parseApproach(*approach)
	if err != nil {
		fail(err)
	}
	if *stream {
		opt, err := streamOptions(ap)
		if err != nil {
			fail(err)
		}
		streamRows(db, q, opt, *limit)
		return
	}
	res, err := harness.Run(db, q, ap)
	if err != nil {
		fail(err)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := csvio.WriteTable(f, res); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d rows to %s\n", res.Len(), *out)
		return
	}
	printTable(res, *limit)
}

// loadCSVTables builds a database from name=path.csv pairs.
func loadCSVTables(load, domain string) *engine.DB {
	var minT, maxT int64
	if _, err := fmt.Sscanf(domain, "%d,%d", &minT, &maxT); err != nil || minT >= maxT {
		fail(fmt.Errorf("bad -domain %q (want min,max)", domain))
	}
	db := engine.NewDB(interval.NewDomain(minT, maxT))
	if load == "" {
		fail(fmt.Errorf("-data csv requires -load name=path[,name=path...]"))
	}
	for _, spec := range strings.Split(load, ",") {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("bad -load entry %q (want name=path)", spec))
		}
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		t, err := csvio.ReadTable(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		db.AddTable(name, t)
	}
	return db
}

func loadDataset(name string, scale float64) (*engine.DB, []workload.Query) {
	switch name {
	case "factory":
		return harness.RunningExample(), nil
	case "employees":
		cfg := dataset.DefaultEmployees
		cfg.NumEmployees = int(float64(cfg.NumEmployees) * scale)
		return dataset.Employees(cfg), workload.Employees()
	case "tpcbih":
		cfg := dataset.DefaultTPCBiH
		cfg.ScaleFactor *= scale
		return dataset.TPCBiH(cfg), workload.TPCH()
	default:
		fail(fmt.Errorf("unknown dataset %q", name))
		return nil, nil
	}
}

func parseApproach(s string) (harness.Approach, error) {
	switch s {
	case "seq":
		return harness.Seq, nil
	case "seq-naive":
		return harness.SeqNaive, nil
	case "nat-ip":
		return harness.NatIP, nil
	case "nat-align":
		return harness.NatAlign, nil
	case "seq-mat":
		return harness.SeqMat, nil
	case "seq-par":
		return harness.SeqPar, nil
	default:
		return 0, fmt.Errorf("unknown approach %q", s)
	}
}

// streamOptions maps a seq-family approach to rewrite options for the
// cursor path; the native baselines have no streaming form.
func streamOptions(ap harness.Approach) (rewrite.Options, error) {
	switch ap {
	case harness.Seq:
		return rewrite.Options{Mode: rewrite.ModeOptimized}, nil
	case harness.SeqNaive:
		return rewrite.Options{Mode: rewrite.ModeNaive}, nil
	case harness.SeqPar:
		return rewrite.Options{Mode: rewrite.ModeOptimized, Parallelism: harness.DefaultWorkers}, nil
	default:
		return rewrite.Options{}, fmt.Errorf("-stream supports seq, seq-naive and seq-par, not %s", ap)
	}
}

// streamRows evaluates q through the streaming cursor path and prints
// rows in pipeline arrival order, without materializing the result.
func streamRows(db *engine.DB, q algebra.Query, opt rewrite.Options, limit int) {
	it, err := rewrite.Stream(context.Background(), db, q, opt)
	if err != nil {
		fail(err)
	}
	defer it.Close()
	fmt.Printf("%s\n", it.Schema())
	n := 0
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		if limit > 0 && n >= limit {
			fmt.Println("... (more rows; raise -limit)")
			return
		}
		fmt.Printf("%v\n", row)
		n++
	}
	fmt.Printf("(%d rows)\n", n)
}

func printTable(t *engine.Table, limit int) {
	c := t.Clone()
	c.Sort()
	fmt.Printf("%s\n", c.Schema)
	for i, row := range c.Rows {
		if limit > 0 && i >= limit {
			fmt.Printf("... (%d more rows)\n", len(c.Rows)-limit)
			return
		}
		fmt.Printf("%v\n", row)
	}
	fmt.Printf("(%d rows)\n", len(c.Rows))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "snapq: %v\n", err)
	os.Exit(1)
}
