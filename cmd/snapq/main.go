// Command snapq is the interactive face of the middleware: it loads one
// of the built-in temporal datasets and evaluates a snapshot SQL query
// against it, printing the period-encoded result.
//
//	snapq -data factory -sql "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')"
//	snapq -data employees -query agg-1 -approach seq
//	snapq -data tpcbih -query Q5 -limit 20
//	snapq -data employees -query diff-2 -approach nat-ip   # observe the BD bug
//	snapq -data factory -explain -sql "SEQ VT (SELECT count(*) AS cnt FROM works)"
//	snapq -data employees -query agg-1 -approach seq-par -explain   # plan + placement annotations
//	snapq -data employees -query agg-1 -approach seq-par -analyze   # EXPLAIN ANALYZE: runtime counters
//	snapq -data employees -query agg-1 -approach par-stream -analyze -trace trace.json
//	snapq -data employees -query join-1 -approach seq-par  # parallel exchange executor
//	snapq -data employees -query join-1 -approach seq-stream  # forced streaming sweeps
//	snapq -data employees -query agg-1 -approach par-stream  # parallel streaming sweeps (ordered exchange)
//	snapq -data employees -query join-1 -stream -limit 0   # stream rows as they arrive
//	snapq -data employees -query agg-1 -window 100,200   # timeslice: clip the result to [100, 200)
//	snapq -data employees -query join-1 -opt -window 100,200 -explain   # cost-aware planner + its decisions
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"snapk/internal/algebra"
	"snapk/internal/csvio"
	"snapk/internal/dataset"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
	"snapk/internal/harness"
	"snapk/internal/interval"
	"snapk/internal/obs"
	"snapk/internal/rewrite"
	"snapk/internal/sqlfe"
	"snapk/internal/workload"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// config is the parsed command line of one snapq invocation.
type config struct {
	Data     string
	Scale    float64
	Load     string
	Domain   string
	SQL      string
	QueryID  string
	Approach string
	Limit    int
	Explain  bool
	Analyze  bool
	Trace    string
	Stream   bool
	Out      string
	Window   string
	Opt      bool
}

// parseFlags parses the command line into a config; separated from run
// so tests can assert flag handling in isolation. Flag diagnostics and
// -help usage go to out.
func parseFlags(args []string, out io.Writer) (config, error) {
	fs := flag.NewFlagSet("snapq", flag.ContinueOnError)
	fs.SetOutput(out)
	cfg := config{}
	fs.StringVar(&cfg.Data, "data", "factory", "dataset: factory|employees|tpcbih|csv")
	fs.Float64Var(&cfg.Scale, "scale", 1, "dataset scale multiplier")
	fs.StringVar(&cfg.Load, "load", "", "with -data csv: comma-separated name=path.csv table sources")
	fs.StringVar(&cfg.Domain, "domain", "0,1000000", "with -data csv: time domain min,max")
	fs.StringVar(&cfg.SQL, "sql", "", "snapshot SQL to run (SEQ VT optional)")
	fs.StringVar(&cfg.QueryID, "query", "", "run a named workload query (join-1..diff-2, Q1..Q19)")
	fs.StringVar(&cfg.Approach, "approach", "seq", "seq|seq-naive|seq-mat|seq-par|seq-stream|par-stream|nat-ip|nat-align")
	fs.IntVar(&cfg.Limit, "limit", 50, "maximum rows to print (0 = all)")
	fs.BoolVar(&cfg.Explain, "explain", false, "print the rewritten plan and its annotated EXPLAIN tree instead of executing")
	fs.BoolVar(&cfg.Analyze, "analyze", false, "execute and print EXPLAIN ANALYZE: per-operator rows, timings, sweep state and exchange metrics")
	fs.StringVar(&cfg.Trace, "trace", "", "write the executed query's operator spans as Chrome-trace JSON to this file (implies -analyze)")
	fs.BoolVar(&cfg.Stream, "stream", false, "print rows as the pipeline produces them instead of materializing and sorting (seq approaches only)")
	fs.StringVar(&cfg.Out, "out", "", "write the result as CSV to this file instead of printing")
	fs.StringVar(&cfg.Window, "window", "", "restrict the query to the time window begin,end (timeslice: row intervals are clipped)")
	fs.BoolVar(&cfg.Opt, "opt", false, "enable the cost-aware planner (pushdown, zone-map pruning, hash pre-sizing, adaptive workers)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	return cfg, nil
}

// run executes one query per the config, writing results to stdout and
// diagnostics to stderr, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	cfg, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0 // the flag package already printed the usage text
	}
	if err != nil {
		return 2 // diagnostics already written by the flag package
	}
	if err := runQuery(cfg, stdout); err != nil {
		fmt.Fprintf(stderr, "snapq: %v\n", err)
		return 1
	}
	return 0
}

// runQuery is the flag-free core of the command.
func runQuery(cfg config, stdout io.Writer) error {
	var db *engine.DB
	var defaultWorkload []workload.Query
	var err error
	if cfg.Data == "csv" {
		db, err = loadCSVTables(cfg.Load, cfg.Domain)
	} else {
		db, defaultWorkload, err = loadDataset(cfg.Data, cfg.Scale)
	}
	if err != nil {
		return err
	}

	var q algebra.Query
	switch {
	case cfg.SQL != "":
		q, err = sqlfe.ParseAndTranslate(cfg.SQL, db)
	case cfg.QueryID != "":
		wq, ok := workload.ByID(defaultWorkload, cfg.QueryID)
		if !ok {
			return fmt.Errorf("unknown workload query %q for dataset %s", cfg.QueryID, cfg.Data)
		}
		fmt.Fprintf(stdout, "-- %s: %s\n", wq.ID, wq.Description)
		q, err = wq.Translate(db)
	default:
		return fmt.Errorf("provide -sql or -query; see -help")
	}
	if err != nil {
		return err
	}

	ap, err := parseApproach(cfg.Approach)
	if err != nil {
		return err
	}
	window, err := parseWindow(cfg.Window)
	if err != nil {
		return err
	}
	// plan layers the planner flags over an approach's base options.
	plan := func(opt rewrite.Options) rewrite.Options {
		opt.Window = window
		if cfg.Opt {
			opt.Planner = rewrite.AllKnobs()
		}
		return opt
	}
	if cfg.Explain {
		return explainQuery(db, q, ap, plan, stdout)
	}
	if cfg.Analyze || cfg.Trace != "" {
		return analyzeQuery(db, q, ap, plan, cfg.Trace, stdout)
	}
	if cfg.Stream {
		opt, err := streamOptions(ap)
		if err != nil {
			return err
		}
		return streamRows(db, q, plan(opt), cfg.Limit, stdout)
	}
	var res *engine.Table
	if window.Valid() || cfg.Opt {
		// The planner flags only exist on the rewriting pipeline — the
		// native baselines have no planner to configure.
		opt, err := streamOptions(ap)
		if err != nil {
			return err
		}
		res, err = rewrite.Run(db, q, plan(opt))
		if err != nil {
			return err
		}
	} else {
		res, err = harness.Run(db, q, ap)
		if err != nil {
			return err
		}
	}
	if cfg.Out != "" {
		f, err := os.Create(cfg.Out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := csvio.WriteTable(f, res); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d rows to %s\n", res.Len(), cfg.Out)
		return nil
	}
	printTable(res, cfg.Limit, stdout)
	return nil
}

// loadCSVTables builds a database from name=path.csv pairs.
func loadCSVTables(load, domain string) (*engine.DB, error) {
	var minT, maxT int64
	if _, err := fmt.Sscanf(domain, "%d,%d", &minT, &maxT); err != nil || minT >= maxT {
		return nil, fmt.Errorf("bad -domain %q (want min,max)", domain)
	}
	db := engine.NewDB(interval.NewDomain(minT, maxT))
	if load == "" {
		return nil, fmt.Errorf("-data csv requires -load name=path[,name=path...]")
	}
	for _, spec := range strings.Split(load, ",") {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -load entry %q (want name=path)", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		t, err := csvio.ReadTable(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		db.AddTable(name, t)
	}
	return db, nil
}

func loadDataset(name string, scale float64) (*engine.DB, []workload.Query, error) {
	switch name {
	case "factory":
		return harness.RunningExample(), nil, nil
	case "employees":
		cfg := dataset.DefaultEmployees
		cfg.NumEmployees = int(float64(cfg.NumEmployees) * scale)
		return dataset.Employees(cfg), workload.Employees(), nil
	case "tpcbih":
		cfg := dataset.DefaultTPCBiH
		cfg.ScaleFactor *= scale
		return dataset.TPCBiH(cfg), workload.TPCH(), nil
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", name)
	}
}

func parseApproach(s string) (harness.Approach, error) {
	switch s {
	case "seq":
		return harness.Seq, nil
	case "seq-naive":
		return harness.SeqNaive, nil
	case "nat-ip":
		return harness.NatIP, nil
	case "nat-align":
		return harness.NatAlign, nil
	case "seq-mat":
		return harness.SeqMat, nil
	case "seq-par":
		return harness.SeqPar, nil
	case "seq-stream":
		return harness.SeqStream, nil
	case "par-stream":
		return harness.SeqParStream, nil
	default:
		return 0, fmt.Errorf("unknown approach %q (valid: seq, seq-naive, seq-mat, seq-par, seq-stream, par-stream, nat-ip, nat-align)", s)
	}
}

// parseWindow parses a begin,end -window value; empty means no window
// (the zero interval).
func parseWindow(s string) (interval.Interval, error) {
	if s == "" {
		return interval.Interval{}, nil
	}
	var b, e int64
	if _, err := fmt.Sscanf(s, "%d,%d", &b, &e); err != nil || b >= e {
		return interval.Interval{}, fmt.Errorf("bad -window %q (want begin,end with begin < end)", s)
	}
	return interval.New(b, e), nil
}

// explainQuery prints the static EXPLAIN of the query under the given
// approach: the compact rewritten plan, then the annotated operator
// tree — sweep modes, sort properties, estimated cardinalities, and the
// fragment/exchange placement the parallel executor would choose at the
// approach's worker count — and, when the planner made any, the
// physical decisions with their reasons (build side, pre-sizing,
// pruning, worker count).
func explainQuery(db *engine.DB, q algebra.Query, ap harness.Approach, plan func(rewrite.Options) rewrite.Options, w io.Writer) error {
	opt, err := streamOptions(ap)
	if err != nil {
		return err
	}
	opt = plan(opt)
	p, dec, err := rewrite.PlanQuery(q, db, opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, p)
	fmt.Fprintln(w)
	n := db.ExplainPlan(p)
	workers := max(opt.Parallelism, 1)
	if dec.Workers > 0 {
		workers = min(workers, dec.Workers)
	}
	parallel.AnnotatePlacement(db, p, n, workers)
	fmt.Fprint(w, n.Render())
	if len(dec.Notes) > 0 {
		fmt.Fprintln(w, "\nplanner decisions:")
		for _, note := range dec.Notes {
			fmt.Fprintf(w, "  %s\n", note)
		}
	}
	fmt.Fprintf(w, "\nprocess: %s\n", obs.Default.Snapshot())
	return nil
}

// analyzeQuery is EXPLAIN ANALYZE: it executes the query through the
// streaming pipeline with a collector attached, drains the result, and
// prints the measured per-operator tree plus the process-wide registry
// line. A non-empty tracePath additionally exports the collected spans
// as Chrome-trace JSON (view with chrome://tracing or ui.perfetto.dev).
func analyzeQuery(db *engine.DB, q algebra.Query, ap harness.Approach, plan func(rewrite.Options) rewrite.Options, tracePath string, w io.Writer) error {
	opt, err := streamOptions(ap)
	if err != nil {
		return err
	}
	opt = plan(opt)
	col := engine.NewCollector()
	opt.Collect = col
	it, err := rewrite.Stream(context.Background(), db, q, opt)
	if err != nil {
		return err
	}
	rows := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		rows++
	}
	streamErr := engine.IterErr(it)
	it.Close()
	if streamErr != nil {
		return streamErr
	}
	fmt.Fprintf(w, "EXPLAIN ANALYZE (approach %s)\n", ap)
	fmt.Fprint(w, col.Render())
	fmt.Fprintf(w, "(%d rows)\n", rows)
	fmt.Fprintf(w, "process: %s\n", obs.Default.Snapshot())
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := col.WriteTrace(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote trace to %s\n", tracePath)
	}
	return nil
}

// streamOptions maps a seq-family approach to rewrite options for the
// streaming pipeline (the cursor, explain and analyze paths); the
// native baselines and the materializing executor have no pipeline
// form.
func streamOptions(ap harness.Approach) (rewrite.Options, error) {
	switch ap {
	case harness.Seq:
		return rewrite.Options{Mode: rewrite.ModeOptimized}, nil
	case harness.SeqNaive:
		return rewrite.Options{Mode: rewrite.ModeNaive}, nil
	case harness.SeqPar:
		return rewrite.Options{Mode: rewrite.ModeOptimized, Parallelism: harness.DefaultWorkers}, nil
	case harness.SeqStream:
		return rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: rewrite.SweepStreaming}, nil
	case harness.SeqParStream:
		return rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: rewrite.SweepStreaming, Parallelism: harness.DefaultWorkers}, nil
	default:
		return rewrite.Options{}, fmt.Errorf("approach %s has no streaming pipeline (valid here: seq, seq-naive, seq-par, seq-stream, par-stream)", ap)
	}
}

// streamRows evaluates q through the streaming cursor path and prints
// rows in pipeline arrival order, without materializing the result.
func streamRows(db *engine.DB, q algebra.Query, opt rewrite.Options, limit int, w io.Writer) error {
	it, err := rewrite.Stream(context.Background(), db, q, opt)
	if err != nil {
		return err
	}
	defer it.Close()
	fmt.Fprintf(w, "%s\n", it.Schema())
	n := 0
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		if limit > 0 && n >= limit {
			fmt.Fprintln(w, "... (more rows; raise -limit)")
			return nil
		}
		fmt.Fprintf(w, "%v\n", row)
		n++
	}
	// A truncated stream must not print as a complete result.
	if err := engine.IterErr(it); err != nil {
		return err
	}
	fmt.Fprintf(w, "(%d rows)\n", n)
	return nil
}

func printTable(t *engine.Table, limit int, w io.Writer) {
	c := t.Clone()
	c.Sort()
	fmt.Fprintf(w, "%s\n", c.Schema)
	for i, row := range c.Rows {
		if limit > 0 && i >= limit {
			fmt.Fprintf(w, "... (%d more rows)\n", len(c.Rows)-limit)
			return
		}
		fmt.Fprintf(w, "%v\n", row)
	}
	fmt.Fprintf(w, "(%d rows)\n", len(c.Rows))
}
