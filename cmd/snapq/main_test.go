package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snapk/internal/harness"
	"snapk/internal/rewrite"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Data != "factory" || cfg.Approach != "seq" || cfg.Limit != 50 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

func TestParseFlagsRejectsUnknown(t *testing.T) {
	var diag bytes.Buffer
	if _, err := parseFlags([]string{"-nonsense"}, &diag); err == nil {
		t.Fatal("expected error for unknown flag")
	}
	if !strings.Contains(diag.String(), "nonsense") {
		t.Fatalf("diagnostic missing flag name: %s", diag.String())
	}
}

// -help must print the full usage text and exit 0, like the standard
// flag package does (regression: the testable refactor swallowed it).
func TestRunHelpPrintsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-help"}, &out, &errb); code != 0 {
		t.Fatalf("-help: exit %d, want 0", code)
	}
	for _, flagName := range []string{"-data", "-approach", "-sql", "-stream"} {
		if !strings.Contains(errb.String(), flagName) {
			t.Fatalf("usage text lacks %s:\n%s", flagName, errb.String())
		}
	}
}

func TestParseApproach(t *testing.T) {
	cases := map[string]harness.Approach{
		"seq":        harness.Seq,
		"seq-naive":  harness.SeqNaive,
		"seq-mat":    harness.SeqMat,
		"seq-par":    harness.SeqPar,
		"seq-stream": harness.SeqStream,
		"par-stream": harness.SeqParStream,
		"nat-ip":     harness.NatIP,
		"nat-align":  harness.NatAlign,
	}
	for s, want := range cases {
		got, err := parseApproach(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got != want {
			t.Fatalf("%s: got %v, want %v", s, got, want)
		}
	}
	if _, err := parseApproach("bogus"); err == nil {
		t.Fatal("expected error for unknown approach")
	} else {
		// The diagnostic must list the valid choices.
		for _, name := range []string{"seq", "seq-par", "par-stream", "nat-align"} {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("approach error does not list %q: %v", name, err)
			}
		}
	}
}

// TestDiffApproachesAgree pins the streaming-difference approach
// coverage end to end through the CLI: the diff workload query under
// seq (auto sweeps), seq-stream (forced streaming merge diff behind
// sort enforcers) and par-stream (per-worker streaming diffs over the
// ordered repartition) must print the identical sorted result.
func TestDiffApproachesAgree(t *testing.T) {
	outputs := map[string]string{}
	for _, ap := range []string{"seq", "seq-mat", "seq-stream", "par-stream"} {
		var out, errb bytes.Buffer
		code := run([]string{"-data", "employees", "-scale", "0.1", "-query", "diff-1", "-approach", ap, "-limit", "0"}, &out, &errb)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", ap, code, errb.String())
		}
		outputs[ap] = out.String()
		if !strings.Contains(out.String(), "rows)") {
			t.Fatalf("%s: no result footer:\n%s", ap, out.String())
		}
	}
	for ap, got := range outputs {
		if got != outputs["seq"] {
			t.Fatalf("approach %s disagrees with seq on diff-1:\n%s\nvs\n%s", ap, got, outputs["seq"])
		}
	}
}

func TestStreamOptions(t *testing.T) {
	opt, err := streamOptions(harness.SeqStream)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Sweep != rewrite.SweepStreaming {
		t.Fatalf("seq-stream must force streaming sweeps, got %+v", opt)
	}
	ps, err := streamOptions(harness.SeqParStream)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Sweep != rewrite.SweepStreaming || ps.Parallelism < 2 {
		t.Fatalf("par-stream must force streaming sweeps on the parallel executor, got %+v", ps)
	}
	if _, err := streamOptions(harness.NatIP); err == nil {
		t.Fatal("native baselines have no streaming form; expected error")
	}
}

// Every seq-family approach must produce the same factory-query result
// text through the full run path.
func TestRunFactoryQueryAcrossApproaches(t *testing.T) {
	var want string
	for _, ap := range []string{"seq", "seq-mat", "seq-par", "seq-stream", "par-stream"} {
		var out, errb bytes.Buffer
		code := run([]string{
			"-data", "factory", "-approach", ap,
			"-sql", "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')",
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", ap, code, errb.String())
		}
		if !strings.Contains(out.String(), "(7 rows)") {
			t.Fatalf("%s: unexpected output:\n%s", ap, out.String())
		}
		if want == "" {
			want = out.String()
		} else if out.String() != want {
			t.Fatalf("%s output diverges from seq:\n%s\nvs\n%s", ap, out.String(), want)
		}
	}
}

func TestRunExplainPrintsPlan(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-data", "factory", "-explain",
		"-sql", "SEQ VT (SELECT count(*) AS cnt FROM works)",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Coalesce") || !strings.Contains(out.String(), "TAgg") {
		t.Fatalf("explain output lacks plan operators:\n%s", out.String())
	}
	// The annotated tree: sweep modes, sequential placement, registry.
	for _, want := range []string{"sweep=", "{sequential", "process: queries="} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("explain output lacks %q:\n%s", want, out.String())
		}
	}
}

// -explain under a parallel approach must annotate fragment/exchange
// placement at the approach's worker count.
func TestRunExplainParallelPlacement(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-data", "factory", "-explain", "-approach", "seq-par",
		"-sql", "SEQ VT (SELECT count(*) AS cnt FROM works)",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"morsel scan ×", "fragments ×"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("parallel explain lacks placement %q:\n%s", want, out.String())
		}
	}
}

// -opt -explain must print the planner's decision notes — why each
// physical choice was made — alongside the annotated tree.
func TestRunExplainPlannerDecisions(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-data", "factory", "-explain", "-opt", "-window", "4,12",
		"-sql", "SEQ VT (SELECT w.name FROM works w JOIN assign a ON w.skill = a.skill)",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"planner decisions:",
		"prune=works (zone-map, window [4, 12))",
		"prune=assign (zone-map, window [4, 12))",
		"build=right (est ",
		"presize=",
		"Window [[4, 12) prune]", // the pushed, prunable windows in the tree
		"est_rows=",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("planner explain lacks %q:\n%s", want, out.String())
		}
	}
	// The adaptive note appears under a parallel approach.
	out.Reset()
	errb.Reset()
	code = run([]string{
		"-data", "factory", "-explain", "-opt", "-window", "4,12", "-approach", "seq-par",
		"-sql", "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "workers=1 (est ") {
		t.Fatalf("parallel planner explain lacks the adaptive-workers note:\n%s", out.String())
	}
	// Without -opt, no decisions section is printed.
	out.Reset()
	errb.Reset()
	code = run([]string{
		"-data", "factory", "-explain",
		"-sql", "SEQ VT (SELECT count(*) AS cnt FROM works)",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "planner decisions:") {
		t.Fatalf("plain explain must not print a decisions section:\n%s", out.String())
	}
}

// -window restricts the executed query; -opt must not change its rows.
func TestRunWindowedQuery(t *testing.T) {
	query := func(extra ...string) string {
		var out, errb bytes.Buffer
		args := append([]string{
			"-data", "factory", "-window", "4,12",
			"-sql", "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')",
		}, extra...)
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		return out.String()
	}
	plain := query()
	// Figure 1b clipped to [4, 12): the windowed result is non-trivial
	// and everything lies inside the window.
	for _, want := range []string{"(1, 4, 8)", "(2, 8, 10)", "(1, 10, 12)", "(3 rows)"} {
		if !strings.Contains(plain, want) {
			t.Fatalf("windowed result lacks %q:\n%s", want, plain)
		}
	}
	if got := query("-opt"); got != plain {
		t.Fatalf("-opt changed the windowed result:\n%s\nvs\n%s", got, plain)
	}
	if got := query("-opt", "-approach", "seq-par"); got != plain {
		t.Fatalf("-opt under seq-par changed the windowed result:\n%s\nvs\n%s", got, plain)
	}
}

func TestRunBadWindowErrors(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-data", "factory", "-window", "bogus",
		"-sql", "SEQ VT (SELECT count(*) AS cnt FROM works)",
	}, &out, &errb)
	if code == 0 {
		t.Fatal("a malformed -window must exit non-zero")
	}
	if !strings.Contains(errb.String(), "bad -window") {
		t.Fatalf("diagnostic missing: %s", errb.String())
	}
	errb.Reset()
	code = run([]string{
		"-data", "factory", "-window", "12,4",
		"-sql", "SEQ VT (SELECT count(*) AS cnt FROM works)",
	}, &out, &errb)
	if code == 0 {
		t.Fatal("an inverted -window must exit non-zero")
	}
}

// -analyze must execute the query, print the measured operator tree with
// exact row counts, and -trace must export well-formed Chrome-trace
// JSON alongside it.
func TestRunAnalyzeWithTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	var out, errb bytes.Buffer
	code := run([]string{
		"-data", "factory", "-approach", "par-stream", "-analyze", "-trace", trace,
		"-sql", "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"EXPLAIN ANALYZE", "Coalesce", "rows=", "(7 rows)", "process: queries=1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("analyze output lacks %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	if !strings.Contains(string(data), "traceEvents") || !strings.Contains(string(data), `"ph":"X"`) {
		t.Fatalf("trace file is not Chrome-trace JSON: %s", data)
	}
	// -trace alone implies -analyze.
	var out2, errb2 bytes.Buffer
	code = run([]string{
		"-data", "factory", "-trace", filepath.Join(dir, "trace2.json"),
		"-sql", "SEQ VT (SELECT count(*) AS cnt FROM works)",
	}, &out2, &errb2)
	if code != 0 {
		t.Fatalf("-trace alone: exit %d, stderr: %s", code, errb2.String())
	}
	if !strings.Contains(out2.String(), "EXPLAIN ANALYZE") {
		t.Fatalf("-trace alone must run the analyze path:\n%s", out2.String())
	}
}

func TestRunStreamMode(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-data", "factory", "-stream", "-limit", "0",
		"-sql", "SELECT name FROM works WHERE skill = 'SP'",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "rows)") {
		t.Fatalf("stream mode did not report a row count:\n%s", out.String())
	}
}

func TestRunErrorsExitNonzero(t *testing.T) {
	for _, args := range [][]string{
		{"-data", "nope", "-sql", "SELECT * FROM works"},
		{"-data", "factory"}, // neither -sql nor -query
		{"-data", "factory", "-sql", "SELECT FROM"},
		{"-data", "factory", "-approach", "bogus", "-sql", "SELECT name FROM works"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Fatalf("args %v: expected nonzero exit", args)
		}
		if errb.Len() == 0 {
			t.Fatalf("args %v: expected diagnostics on stderr", args)
		}
	}
}

func TestRunCSVOut(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "res.csv")
	var buf, errb bytes.Buffer
	code := run([]string{
		"-data", "factory", "-out", out,
		"-sql", "SELECT name FROM works",
	}, &buf, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "name") {
		t.Fatalf("CSV output lacks header: %s", data)
	}
}
