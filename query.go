package snapk

import (
	"fmt"
	"sort"
	"strings"

	"snapk/internal/algebra"
	"snapk/internal/baseline"
	"snapk/internal/engine"
	"snapk/internal/rewrite"
	"snapk/internal/sqlfe"
	"snapk/internal/tuple"
)

// Approach selects how a snapshot query is evaluated. The default, Seq,
// is the paper's provably correct middleware. The remaining approaches
// reproduce prior systems, including their bugs, for comparison studies.
type Approach int

const (
	// Seq is the paper's approach: REWR with a single final coalescing
	// step and pre-aggregated splits (§9). Correct and the unique
	// encoding.
	Seq Approach = iota
	// SeqNaive is Seq without the §9 optimizations: coalescing after
	// every operator and materialized splits. Correct but slower; used
	// for the ablation study.
	SeqNaive
	// NativeIntervalPreservation emulates ATSQL/DBX-style native snapshot
	// support. Exhibits the AG and BD bugs; results are not coalesced.
	NativeIntervalPreservation
	// NativeAlignment emulates the PG-Nat temporal alignment kernel
	// approach. Exhibits the AG bug and set-semantics difference.
	NativeAlignment
	// SeqMaterialized is Seq executed on the operator-at-a-time
	// materializing executor instead of the default streaming iterator
	// engine. Results are identical to Seq; it exists as the ablation
	// baseline for the pipelining study.
	SeqMaterialized
)

// String returns the display name used in experiment output.
func (a Approach) String() string {
	switch a {
	case Seq:
		return "Seq"
	case SeqNaive:
		return "Seq-naive"
	case NativeIntervalPreservation:
		return "Nat-ip"
	case NativeAlignment:
		return "Nat-align"
	case SeqMaterialized:
		return "Seq-mat"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Row is one period-encoded result row: the data values plus the validity
// interval [Begin, End).
type Row struct {
	Values []any
	Begin  int64
	End    int64
}

// Result is a period-encoded query result. Under the Seq approach it is
// the unique K-coalesced interval encoding of the snapshot result.
type Result struct {
	Columns []string
	Rows    []Row
}

// Len returns the number of result rows.
func (r *Result) Len() int { return len(r.Rows) }

// String renders the result as an aligned text table, sorted by data
// values then period, e.g. for display in the examples and the CLI.
func (r *Result) String() string {
	header := append(append([]string{}, r.Columns...), "period")
	rows := make([][]string, 0, len(r.Rows)+1)
	rows = append(rows, header)
	sorted := append([]Row{}, r.Rows...)
	sort.Slice(sorted, func(i, j int) bool { return rowLess(sorted[i], sorted[j]) })
	for _, row := range sorted {
		line := make([]string, 0, len(row.Values)+1)
		for _, v := range row.Values {
			line = append(line, formatValue(v))
		}
		line = append(line, fmt.Sprintf("[%d, %d)", row.Begin, row.End))
		rows = append(rows, line)
	}
	widths := make([]int, len(header))
	for _, line := range rows {
		for i, cell := range line {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for li, line := range rows {
		for i, cell := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if li == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func rowLess(a, b Row) bool {
	for i := range a.Values {
		if i >= len(b.Values) {
			return false
		}
		if cmp := compareAny(a.Values[i], b.Values[i]); cmp != 0 {
			return cmp < 0
		}
	}
	if a.Begin != b.Begin {
		return a.Begin < b.Begin
	}
	return a.End < b.End
}

// compareAny orders result values by type, matching tuple.Compare: NULL
// first, then numerics compared numerically across int64/float64 (so 9
// sorts before 10 — not lexicographically), then strings, then bools.
func compareAny(a, b any) int {
	av, errA := toValue(a)
	bv, errB := toValue(b)
	if errA != nil || errB != nil {
		// Unknown value types cannot come from the engine; fall back to a
		// stable display-order comparison rather than panicking.
		return strings.Compare(formatValue(a), formatValue(b))
	}
	return tuple.Compare(av, bv)
}

func formatValue(v any) string {
	if v == nil {
		return "NULL"
	}
	if f, ok := v.(float64); ok {
		return fmt.Sprintf("%g", f)
	}
	return fmt.Sprintf("%v", v)
}

// At returns the snapshot of the result at time t: the data rows of all
// result rows whose period contains t. This is the timeslice operator
// τ_t on the encoded result.
func (r *Result) At(t int64) [][]any {
	var out [][]any
	for _, row := range r.Rows {
		if row.Begin <= t && t < row.End {
			out = append(out, row.Values)
		}
	}
	return out
}

// Query evaluates a snapshot SQL query with the default (Seq) approach.
// The statement may optionally be wrapped in SEQ VT ( ... ); either way
// it is interpreted under snapshot semantics over the period tables
// registered with CreateTable.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryWith(sql, Seq)
}

// QueryWith evaluates a snapshot SQL query with the chosen approach.
func (db *DB) QueryWith(sql string, ap Approach) (*Result, error) {
	q, err := sqlfe.ParseAndTranslate(sql, db.eng)
	if err != nil {
		return nil, err
	}
	return db.evalAlgebra(q, ap)
}

func (db *DB) evalAlgebra(q algebra.Query, ap Approach) (*Result, error) {
	var tbl *engine.Table
	var err error
	switch ap {
	case Seq:
		tbl, err = rewrite.Run(db.eng, q, rewrite.Options{Mode: rewrite.ModeOptimized, Parallelism: db.parallelism, Limits: db.limits})
	case SeqNaive:
		tbl, err = rewrite.Run(db.eng, q, rewrite.Options{Mode: rewrite.ModeNaive})
	case SeqMaterialized:
		tbl, err = rewrite.Run(db.eng, q, rewrite.Options{Mode: rewrite.ModeOptimized, Materialize: true})
	case NativeIntervalPreservation:
		tbl, err = baseline.Eval(db.eng, q, baseline.IntervalPreservation)
	case NativeAlignment:
		tbl, err = baseline.Eval(db.eng, q, baseline.Alignment)
	default:
		return nil, fmt.Errorf("snapk: unknown approach %d", ap)
	}
	if err != nil {
		return nil, err
	}
	return tableToResult(tbl), nil
}

func tableToResult(t *engine.Table) *Result {
	res := &Result{Columns: append([]string{}, t.DataSchema().Cols...)}
	n := t.DataArity()
	for _, row := range t.Rows {
		vals := make([]any, n)
		for i := 0; i < n; i++ {
			vals[i] = fromValue(row[i])
		}
		iv := t.Interval(row)
		res.Rows = append(res.Rows, Row{Values: vals, Begin: iv.Begin, End: iv.End})
	}
	return res
}

// Explain returns the physical plan the middleware would execute for the
// given snapshot query under the Seq approach.
func (db *DB) Explain(sql string) (string, error) {
	q, err := sqlfe.ParseAndTranslate(sql, db.eng)
	if err != nil {
		return "", err
	}
	p, err := rewrite.Rewrite(q, db.eng, rewrite.Options{Mode: rewrite.ModeOptimized})
	if err != nil {
		return "", err
	}
	return p.String(), nil
}
