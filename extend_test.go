package snapk_test

import (
	"testing"

	snapk "snapk"
)

func TestQueryAt(t *testing.T) {
	db := factoryDB(t)
	q := `SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')`
	snap, err := db.QueryAt(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0][0].(int64) != 2 {
		t.Fatalf("QueryAt(8) = %v", snap)
	}
	snap, err = db.QueryAt(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0][0].(int64) != 0 {
		t.Fatalf("QueryAt(0) = %v (gap must report 0)", snap)
	}
	if _, err := db.QueryAt(q, 99); err == nil {
		t.Fatal("out-of-domain time must error")
	}
	if _, err := db.QueryAt(`bad`, 5); err == nil {
		t.Fatal("parse error must propagate")
	}
}

func TestQuerySetSemantics(t *testing.T) {
	db := factoryDB(t)
	// Under bag semantics SP has multiplicity 2 during [8,10); under set
	// semantics the projection coalesces to one maximal interval [3,16).
	res, err := db.QuerySet(`SEQ VT (SELECT skill FROM works)`)
	if err != nil {
		t.Fatal(err)
	}
	var spRows []snapk.Row
	for _, r := range res.Rows {
		if r.Values[0] == "SP" {
			spRows = append(spRows, r)
		}
	}
	if len(spRows) != 2 {
		t.Fatalf("SP set-semantics rows = %v", spRows)
	}
	// Sorted by construction of period entries: [3,16) and [18,20).
	found := map[[2]int64]bool{}
	for _, r := range spRows {
		found[[2]int64{r.Begin, r.End}] = true
	}
	if !found[[2]int64{3, 16}] || !found[[2]int64{18, 20}] {
		t.Fatalf("SP intervals = %v, want [3,16) and [18,20)", spRows)
	}
}

func TestQuerySetDifference(t *testing.T) {
	db := factoryDB(t)
	// Set difference: SP vanishes wherever any SP worker exists.
	res, err := db.QuerySet(`SEQ VT (
		SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works
	)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Values[0] == "SP" {
			t.Fatalf("set semantics should remove SP entirely: %v", res.Rows)
		}
	}
	// NS remains only during [3,8).
	if len(res.Rows) != 1 || res.Rows[0].Begin != 3 || res.Rows[0].End != 8 {
		t.Fatalf("set difference rows = %v", res.Rows)
	}
}

func TestQuerySetRejectsAggregation(t *testing.T) {
	db := factoryDB(t)
	if _, err := db.QuerySet(`SEQ VT (SELECT count(*) AS c FROM works)`); err == nil {
		t.Fatal("aggregation under set semantics must error")
	}
	if _, err := db.QuerySet(`bad`); err == nil {
		t.Fatal("parse error must propagate")
	}
	if _, err := db.QuerySet(`SELECT x FROM nope`); err == nil {
		t.Fatal("unknown table must error")
	}
}

func TestDeleteSequenced(t *testing.T) {
	db := snapk.New(0, 24)
	tb, _ := db.CreateTable("t", "name")
	must(t, tb.Insert(3, 10, "Ann"))
	must(t, tb.Insert(8, 16, "Joe"))
	// Delete Ann during [5, 8): her row splits into [3,5) and [8,10).
	n, err := tb.Delete(5, 8, `name = 'Ann'`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("affected = %d", n)
	}
	res, err := db.Query(`SELECT name FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	ann := map[[2]int64]bool{}
	for _, r := range res.Rows {
		if r.Values[0] == "Ann" {
			ann[[2]int64{r.Begin, r.End}] = true
		}
	}
	if !ann[[2]int64{3, 5}] || !ann[[2]int64{8, 10}] || len(ann) != 2 {
		t.Fatalf("Ann periods after delete = %v", ann)
	}
	// Full containment removes the row entirely.
	if _, err := tb.Delete(0, 24, `name = 'Joe'`); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Query(`SELECT name FROM t WHERE name = 'Joe'`)
	if res.Len() != 0 {
		t.Fatalf("Joe should be gone: %v", res.Rows)
	}
	// Empty condition deletes everything in the window.
	if _, err := tb.Delete(0, 24, ""); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 0 {
		t.Fatalf("table should be empty, has %d rows", tb.Rows())
	}
}

func TestDeleteErrors(t *testing.T) {
	db := snapk.New(0, 24)
	tb, _ := db.CreateTable("t", "name")
	if _, err := tb.Delete(5, 5, ""); err == nil {
		t.Error("empty window must error")
	}
	if _, err := tb.Delete(0, 5, "zzz ="); err == nil {
		t.Error("bad condition must error")
	}
	if _, err := tb.Delete(0, 5, "zzz = 1"); err == nil {
		t.Error("unknown column must error")
	}
}

func TestUpdateSequenced(t *testing.T) {
	db := snapk.New(0, 24)
	tb, _ := db.CreateTable("sal", "emp", "amount")
	must(t, tb.Insert(0, 20, "ann", 50000))
	// Raise Ann to 60000 during [10, 15): the row splits in three.
	n, err := tb.Update(10, 15, "amount", 60000, `emp = 'ann'`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("affected = %d", n)
	}
	res, err := db.Query(`SELECT emp, amount FROM sal`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]int64]int64{}
	for _, r := range res.Rows {
		got[[2]int64{r.Begin, r.End}] = r.Values[1].(int64)
	}
	want := map[[2]int64]int64{{0, 10}: 50000, {10, 15}: 60000, {15, 20}: 50000}
	if len(got) != len(want) {
		t.Fatalf("periods = %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("period %v = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
}

func TestUpdateErrors(t *testing.T) {
	db := snapk.New(0, 24)
	tb, _ := db.CreateTable("t", "a")
	if _, err := tb.Update(5, 5, "a", 1, ""); err == nil {
		t.Error("empty window must error")
	}
	if _, err := tb.Update(0, 5, "zzz", 1, ""); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := tb.Update(0, 5, "a", struct{}{}, ""); err == nil {
		t.Error("bad value must error")
	}
	if _, err := tb.Update(0, 5, "a", 1, "zzz = 1"); err == nil {
		t.Error("bad condition must error")
	}
}

func TestCoalescedInspection(t *testing.T) {
	db := snapk.New(0, 24)
	tb, _ := db.CreateTable("t", "a")
	must(t, tb.Insert(0, 5, 1))
	must(t, tb.Insert(5, 9, 1))
	ok, n := tb.Coalesced()
	if ok {
		t.Error("adjacent equal rows are not coalesced storage")
	}
	if n != 1 {
		t.Errorf("coalesced count = %d, want 1", n)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
