package snapk

import (
	"context"
	"fmt"

	"snapk/internal/engine"
	"snapk/internal/obs"
	"snapk/internal/rewrite"
	"snapk/internal/sqlfe"
	"snapk/internal/tuple"
)

// Rows is a streaming cursor over a snapshot query result: the
// database/sql-style Next/Scan/Close triple. Unlike Query, which hands
// back a fully materialized Result, a Rows consumes the rewritten plan's
// pull-based pipeline row by row, so huge results can be processed in
// constant client memory. Canceling the context passed to QueryRows
// stops the stream (Next returns false and Err reports the cause) and
// tears down any parallel fragment goroutines.
//
// A Rows is not safe for concurrent use. Always Close it; Close is
// idempotent.
type Rows struct {
	ctx    context.Context
	it     engine.RowIter
	cols   []string
	cur    tuple.Tuple
	err    error
	closed bool
	done   bool
	// emitted counts rows delivered through this cursor, flushed to the
	// process-wide registry once at end of stream / Close — a local
	// increment per row, never a per-row atomic on the cursor hot path.
	emitted int64
	flushed bool
	// Batch drain: when the pipeline root is batch-capable, the cursor
	// pulls engine.DefaultBatchSize rows per NextBatch call and hands
	// them out one at a time, so the whole operator chain pays one
	// virtual call per batch instead of one per row. Row tuples are
	// immutable once yielded, so the current row staying live across a
	// refill is safe; only the batch's row slice is reused.
	bit engine.BatchIter
	b   engine.RowBatch
	bi  int
}

// QueryRows evaluates a snapshot SQL query under the Seq approach and
// returns a streaming cursor over the period-encoded result. The
// statement may optionally be wrapped in SEQ VT ( ... ). The query runs
// with the database's configured parallelism (SetParallelism).
func (db *DB) QueryRows(ctx context.Context, sql string) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q, err := sqlfe.ParseAndTranslate(sql, db.eng)
	if err != nil {
		return nil, err
	}
	it, err := rewrite.Stream(ctx, db.eng, q, rewrite.Options{
		Mode:        rewrite.ModeOptimized,
		Parallelism: db.parallelism,
		Limits:      db.limits,
	})
	if err != nil {
		return nil, err
	}
	sch := it.Schema()
	r := &Rows{
		ctx:  ctx,
		it:   it,
		cols: append([]string{}, sch.Cols[:sch.Arity()-2]...),
	}
	if bit, ok := it.(engine.BatchIter); ok {
		r.bit = bit
		r.b = *engine.NewRowBatch(engine.DefaultBatchSize)
	}
	return r, nil
}

// Columns returns the data column names of the result (the validity
// period is exposed separately through Period).
func (r *Rows) Columns() []string { return append([]string{}, r.cols...) }

// Next advances to the next result row, returning false when the stream
// is exhausted, canceled or closed. After Next returns false, check Err.
func (r *Rows) Next() bool {
	if r.closed || r.done {
		return false
	}
	row, ok := r.next()
	if !ok {
		r.done = true
		r.cur = nil
		r.flushEmitted()
		// The pipeline carries its own terminal error (the error-carrying
		// iterator protocol): cancellation, a tripped resource limit, a
		// failed operator or a contained panic all surface here, while a
		// naturally complete stream reports nil — so a cancel issued after
		// full consumption never retroactively becomes an error.
		r.err = engine.IterErr(r.it)
		return false
	}
	//lint:ignore rowretain the cursor row is exposed read-only via Scan/Values and replaced on the next Next
	r.cur = row
	r.emitted++
	return true
}

// next pulls the next result row, refilling the cursor batch when
// the pipeline is batch-capable and falling back to per-row pull when
// it is not.
func (r *Rows) next() (tuple.Tuple, bool) {
	if r.bit == nil {
		return r.it.Next()
	}
	if r.bi >= r.b.Len() {
		if !r.bit.NextBatch(&r.b) {
			return nil, false
		}
		r.bi = 0
	}
	row := r.b.Rows[r.bi]
	r.bi++
	return row, true
}

// flushEmitted adds the cursor's row count to the process-wide registry
// exactly once, at end of stream or Close (whichever comes first).
func (r *Rows) flushEmitted() {
	if r.flushed {
		return
	}
	r.flushed = true
	if r.emitted > 0 {
		obs.Default.RowsEmitted.Add(r.emitted)
	}
}

// Err returns the error that ended iteration early — context
// cancellation, a deadline (context.DeadlineExceeded), a tripped
// resource limit (ErrRowLimit, ErrMemBudget), a failed operator or a
// contained panic — or nil after a natural end of stream. Like
// database/sql, always check Err after Next returns false.
func (r *Rows) Err() error {
	return r.err
}

// Period returns the validity interval [begin, end) of the current row,
// or zeros when called without a successful Next.
func (r *Rows) Period() (begin, end int64) {
	if r.cur == nil {
		return 0, 0
	}
	n := len(r.cur)
	return r.cur[n-2].AsInt(), r.cur[n-1].AsInt()
}

// Values returns the data column values of the current row as Go values
// (int64, float64, string, bool or nil), or nil when called without a
// successful Next.
func (r *Rows) Values() []any {
	if r.cur == nil {
		return nil
	}
	out := make([]any, len(r.cols))
	for i := range r.cols {
		out[i] = fromValue(r.cur[i])
	}
	return out
}

// Scan copies the data columns of the current row into dest, which must
// contain one pointer per column: *int64, *float64, *string, *bool or
// *any. NULL scans only into *any (as nil); numeric widening from BIGINT
// into *float64 is supported. It must only be called after a successful
// Next.
func (r *Rows) Scan(dest ...any) error {
	// database/sql semantics: once the stream has failed, every Scan
	// reports the stream error — a consumer that ignores Next's false
	// return cannot mistake a truncated result for a complete one.
	if r.err != nil {
		return r.err
	}
	if r.closed {
		return fmt.Errorf("snapk: Scan called on closed Rows")
	}
	if r.cur == nil {
		return fmt.Errorf("snapk: Scan called without a successful Next")
	}
	if len(dest) != len(r.cols) {
		return fmt.Errorf("snapk: Scan expects %d destinations, got %d", len(r.cols), len(dest))
	}
	for i, d := range dest {
		v := r.cur[i]
		if err := scanValue(v, d); err != nil {
			return fmt.Errorf("snapk: column %s: %w", r.cols[i], err)
		}
	}
	return nil
}

func scanValue(v tuple.Value, dest any) error {
	if p, ok := dest.(*any); ok {
		*p = fromValue(v)
		return nil
	}
	if v.IsNull() {
		return fmt.Errorf("cannot scan NULL into %T (use *any)", dest)
	}
	switch p := dest.(type) {
	case *int64:
		if v.Kind() != tuple.KindInt {
			return fmt.Errorf("cannot scan %s into *int64", v.Kind())
		}
		*p = v.AsInt()
	case *float64:
		if v.Kind() != tuple.KindFloat && v.Kind() != tuple.KindInt {
			return fmt.Errorf("cannot scan %s into *float64", v.Kind())
		}
		*p = v.AsFloat()
	case *string:
		if v.Kind() != tuple.KindString {
			return fmt.Errorf("cannot scan %s into *string", v.Kind())
		}
		*p = v.AsString()
	case *bool:
		if v.Kind() != tuple.KindBool {
			return fmt.Errorf("cannot scan %s into *bool", v.Kind())
		}
		*p = v.AsBool()
	default:
		return fmt.Errorf("unsupported Scan destination %T", dest)
	}
	return nil
}

// Close releases the cursor and tears down the underlying pipeline,
// including any parallel fragment goroutines. It is idempotent. The
// current row is dropped: after Close, Scan errors and Period/Values
// return zero values, mirroring database/sql. A Close before the stream
// ends is a clean termination, not an error — Err stays nil.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.cur = nil
	r.flushEmitted()
	r.it.Close()
	return nil
}
