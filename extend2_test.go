package snapk_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	snapk "snapk"
)

// TestQueryAtEqualsResultSlice is Thm 6.3 at the API surface: slicing
// the base tables at t and evaluating non-temporally (QueryAt) must give
// the same bag of rows as evaluating the full temporal query and slicing
// its result (Query().At).
func TestQueryAtEqualsResultSlice(t *testing.T) {
	db := factoryDB(t)
	queries := []string{
		`SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')`,
		`SEQ VT (SELECT skill FROM works)`,
		`SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)`,
		`SEQ VT (SELECT w.name AS n, a.mach AS m FROM works w JOIN assign a ON w.skill = a.skill)`,
		`SEQ VT (SELECT skill, count(*) AS c FROM works GROUP BY skill)`,
	}
	asBag := func(rows [][]any) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprintf("%v", r)
		}
		sort.Strings(out)
		return out
	}
	for _, sql := range queries {
		full, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		for _, tp := range []int64{0, 3, 8, 12, 19, 23} {
			fast, err := db.QueryAt(sql, tp)
			if err != nil {
				t.Fatalf("%s at %d: %v", sql, tp, err)
			}
			a, b := asBag(fast), asBag(full.At(tp))
			if len(a) != len(b) {
				t.Fatalf("%s at %d: QueryAt %v vs slice %v", sql, tp, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s at %d: QueryAt %v vs slice %v", sql, tp, a, b)
				}
			}
		}
	}
}

func TestQueryAtMultiplicities(t *testing.T) {
	db := factoryDB(t)
	// At 08:00 both Ann and Sam are SP: projection to skill has SP twice.
	rows, err := db.QueryAt(`SEQ VT (SELECT skill FROM works WHERE skill = 'SP')`, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCreateTableFromCSV(t *testing.T) {
	db := factoryDB(t)
	csv := "mach,skill,begin,end\nM9,SP,0,24\n"
	tb, err := db.CreateTableFromCSV("extra", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 1 || tb.Columns()[0] != "mach" {
		t.Fatalf("table = %v rows, cols %v", tb.Rows(), tb.Columns())
	}
	res, err := db.Query(`SELECT mach FROM extra`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0].Values[0] != "M9" {
		t.Fatalf("result = %v", res.Rows)
	}
	// Duplicate name rejected.
	if _, err := db.CreateTableFromCSV("extra", strings.NewReader(csv)); err == nil {
		t.Error("duplicate table must error")
	}
	// Bad CSV rejected.
	if _, err := db.CreateTableFromCSV("bad", strings.NewReader("x\n")); err == nil {
		t.Error("bad csv must error")
	}
	// Period outside the DB domain rejected.
	if _, err := db.CreateTableFromCSV("far", strings.NewReader("a,begin,end\n1,0,9999\n")); err == nil {
		t.Error("out-of-domain period must error")
	}
}

func TestWriteCSVRoundtrip(t *testing.T) {
	db := factoryDB(t)
	res, err := db.Query(`SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "cnt,begin,end\n") {
		t.Fatalf("csv = %q", out)
	}
	if !strings.Contains(out, "0,0,3") || !strings.Contains(out, "2,8,10") {
		t.Fatalf("csv missing rows:\n%s", out)
	}
	// Load the result back as a table and query it.
	db2 := snapk.New(0, 24)
	if _, err := db2.CreateTableFromCSV("cnts", strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	res2, err := db2.Query(`SELECT cnt FROM cnts WHERE cnt > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 4 {
		t.Fatalf("reloaded result = %v", res2.Rows)
	}
}

func TestTableWriteCSV(t *testing.T) {
	db := factoryDB(t)
	// Retrieve table handle by creating a fresh one.
	tb, err := db.CreateTable("scratch", "v")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(1, 5, 42); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "v,begin,end\n42,1,5\n" {
		t.Fatalf("csv = %q", b.String())
	}
}
