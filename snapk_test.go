package snapk_test

import (
	"strings"
	"testing"

	snapk "snapk"
)

func factoryDB(t *testing.T) *snapk.DB {
	t.Helper()
	db := snapk.New(0, 24)
	works, err := db.CreateTable("works", "name", "skill")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		b, e  int64
		name  string
		skill string
	}{
		{3, 10, "Ann", "SP"}, {8, 16, "Joe", "NS"}, {8, 16, "Sam", "SP"}, {18, 20, "Ann", "SP"},
	} {
		if err := works.Insert(r.b, r.e, r.name, r.skill); err != nil {
			t.Fatal(err)
		}
	}
	assign, err := db.CreateTable("assign", "mach", "skill")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		b, e  int64
		mach  string
		skill string
	}{
		{3, 12, "M1", "SP"}, {6, 14, "M2", "SP"}, {3, 16, "M3", "NS"},
	} {
		if err := assign.Insert(r.b, r.e, r.mach, r.skill); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestQuickstartQonduty(t *testing.T) {
	db := factoryDB(t)
	res, err := db.Query(`SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 7 {
		t.Fatalf("Qonduty has %d rows, want 7 (Figure 1b):\n%s", res.Len(), res)
	}
	// Snapshot at 08:00 has exactly one row with cnt = 2.
	snap := res.At(8)
	if len(snap) != 1 || snap[0][0].(int64) != 2 {
		t.Fatalf("At(8) = %v", snap)
	}
	// Gaps report 0.
	if snap := res.At(0); len(snap) != 1 || snap[0][0].(int64) != 0 {
		t.Fatalf("At(0) = %v", snap)
	}
	s := res.String()
	if !strings.Contains(s, "cnt") || !strings.Contains(s, "[0, 3)") {
		t.Errorf("String missing pieces:\n%s", s)
	}
}

func TestBagDifferenceViaFacade(t *testing.T) {
	db := factoryDB(t)
	res, err := db.Query(`SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("Qskillreq has %d rows, want 3 (Figure 1c):\n%s", res.Len(), res)
	}
}

func TestApproachesDisagreeOnBugs(t *testing.T) {
	db := factoryDB(t)
	q := `SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')`
	correct, err := db.QueryWith(q, snapk.Seq)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := db.QueryWith(q, snapk.SeqNaive)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Len() != correct.Len() {
		t.Fatal("SeqNaive must agree with Seq")
	}
	for _, ap := range []snapk.Approach{snapk.NativeIntervalPreservation, snapk.NativeAlignment} {
		buggy, err := db.QueryWith(q, ap)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range buggy.Rows {
			if row.Values[0].(int64) == 0 {
				t.Fatalf("%v should exhibit the AG bug (no count-0 rows)", ap)
			}
		}
	}
}

func TestInsertValidation(t *testing.T) {
	db := snapk.New(0, 10)
	tb, err := db.CreateTable("t", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		b, e int64
		vals []any
	}{
		{5, 5, []any{1, 2}},          // empty period
		{8, 12, []any{1, 2}},         // outside domain
		{0, 5, []any{1}},             // arity
		{0, 5, []any{1, struct{}{}}}, // bad type
	}
	for i, c := range cases {
		if err := tb.Insert(c.b, c.e, c.vals...); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
	if err := tb.Insert(0, 5, nil, 2.5); err != nil {
		t.Errorf("null/float insert failed: %v", err)
	}
	if tb.Rows() != 1 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	if tb.Name() != "t" || len(tb.Columns()) != 2 {
		t.Error("metadata accessors broken")
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := snapk.New(0, 10)
	if _, err := db.CreateTable("t"); err == nil {
		t.Error("no columns should error")
	}
	if _, err := db.CreateTable("t", "_begin"); err == nil {
		t.Error("reserved column should error")
	}
	if _, err := db.CreateTable("t", "a", "a"); err == nil {
		t.Error("duplicate column should error")
	}
	if _, err := db.CreateTable("t", "a"); err != nil {
		t.Error(err)
	}
	if _, err := db.CreateTable("t", "a"); err == nil {
		t.Error("duplicate table should error")
	}
}

func TestQueryErrors(t *testing.T) {
	db := snapk.New(0, 10)
	if _, err := db.Query(`SELECT * FROM nope`); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := db.Query(`not sql`); err == nil {
		t.Error("parse error expected")
	}
	if _, err := db.QueryWith(`SELECT 1 AS one FROM nope`, snapk.Approach(99)); err == nil {
		t.Error("unknown approach should error")
	}
}

func TestDomainAccessorsAndExplain(t *testing.T) {
	db := factoryDB(t)
	if db.MinTime() != 0 || db.MaxTime() != 24 {
		t.Error("domain accessors broken")
	}
	plan, err := db.Explain(`SEQ VT (SELECT count(*) AS cnt FROM works)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Coalesce") || !strings.Contains(plan, "TAgg") {
		t.Errorf("Explain = %q", plan)
	}
	if _, err := db.Explain(`bad`); err == nil {
		t.Error("Explain must propagate parse errors")
	}
}

func TestApproachString(t *testing.T) {
	names := map[snapk.Approach]string{
		snapk.Seq: "Seq", snapk.SeqNaive: "Seq-naive",
		snapk.NativeIntervalPreservation: "Nat-ip", snapk.NativeAlignment: "Nat-align",
	}
	for ap, want := range names {
		if got := ap.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(ap), got, want)
		}
	}
}

// Result.String must sort numeric columns numerically: 9 before 10, not
// the lexicographic "10" < "9" the old formatValue-based comparison
// produced.
func TestResultSortsNumericallyNotLexicographically(t *testing.T) {
	db := snapk.New(0, 100)
	tbl, err := db.CreateTable("t", "n", "f")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{10, 9, 100, 2} {
		if err := tbl.Insert(0, 10, n, float64(n)/2); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(`SELECT n, f FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	order := []string{"2 ", "9 ", "10 ", "100 "}
	last := -1
	for _, frag := range order {
		i := strings.Index(out, "\n"+frag)
		if i < 0 {
			t.Fatalf("row starting with %q missing:\n%s", frag, out)
		}
		if i < last {
			t.Fatalf("row %q out of numeric order:\n%s", frag, out)
		}
		last = i
	}
	// Mixed int/float and NULL ordering must not panic and puts NULL first.
	mixed, err := db.CreateTable("m", "v")
	if err != nil {
		t.Fatal(err)
	}
	must := func(e error) {
		if e != nil {
			t.Fatal(e)
		}
	}
	must(mixed.Insert(0, 5, 2))
	must(mixed.Insert(0, 5, 1.5))
	must(mixed.Insert(0, 5, nil))
	res, err = db.Query(`SELECT v FROM m`)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(res.String()), "\n")
	if len(lines) != 5 { // header + separator + 3 rows
		t.Fatalf("unexpected output:\n%s", res)
	}
	for i, want := range []string{"NULL", "1.5", "2"} {
		if !strings.HasPrefix(lines[2+i], want) {
			t.Fatalf("row %d = %q, want prefix %q\n%s", i, lines[2+i], want, res)
		}
	}
}
