// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark name
// carries the experiment id; run all with
//
//	go test -bench=. -benchmem
//
// Benchmark datasets are scaled so the whole suite finishes in minutes;
// cmd/snapbench runs the same experiments at larger scales with
// paper-style table output.
package snapk_test

import (
	"context"
	"fmt"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/dataset"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
	"snapk/internal/harness"
	"snapk/internal/krel"
	"snapk/internal/rewrite"
	"snapk/internal/workload"
)

// benchEmployees is the Employee dataset used by the Table 3 benchmarks.
var benchEmployees = dataset.EmployeesConfig{NumEmployees: 800, NumDepartments: 9, Seed: 42}

// benchTPCSmall / benchTPCLarge are the two TPC-BiH scales (the paper's
// SF1 → SF10 step, scaled down).
var (
	benchTPCSmall = dataset.TPCBiHConfig{ScaleFactor: 0.05, Seed: 7}
	benchTPCLarge = dataset.TPCBiHConfig{ScaleFactor: 0.15, Seed: 7}
)

// BenchmarkFig5Coalesce regenerates Figure 5: multiset coalescing runtime
// for varying input sizes; per-row cost should stay flat (linear
// scaling), for both coalescing implementations.
func BenchmarkFig5Coalesce(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000, 100000} {
		db := dataset.CoalesceInput(n, 3)
		tbl, err := db.Table("sal")
		if err != nil {
			b.Fatal(err)
		}
		for _, impl := range []struct {
			name string
			im   engine.CoalesceImpl
		}{{"native", engine.CoalesceNative}, {"analytic", engine.CoalesceAnalytic}} {
			b.Run(fmt.Sprintf("impl=%s/rows=%d", impl.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					engine.Coalesce(tbl, impl.im)
				}
			})
		}
	}
}

// benchWorkload runs one workload query under one approach.
func benchWorkload(b *testing.B, db *engine.DB, wq workload.Query, ap harness.Approach) {
	b.Helper()
	q, err := wq.Translate(db)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run(db, q, ap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Employee regenerates the Employee half of Table 3:
// every query under Seq and both native comparators. The paper's shape:
// joins comparable, Seq far ahead on aggregation (except tiny inputs),
// Nat ahead on diff-1, Seq ahead on diff-2.
func BenchmarkTable3Employee(b *testing.B) {
	db := dataset.Employees(benchEmployees)
	for _, wq := range workload.Employees() {
		for _, ap := range []harness.Approach{harness.Seq, harness.NatIP, harness.NatAlign} {
			b.Run(fmt.Sprintf("q=%s/ap=%s", wq.ID, ap), func(b *testing.B) {
				benchWorkload(b, db, wq, ap)
			})
		}
	}
}

// BenchmarkTable3TPCBiH regenerates the TPC-BiH half of Table 3 at two
// scale factors. Nat-align is run only at the small scale — at larger
// scales it is the analogue of the paper's 2-hour timeouts.
func BenchmarkTable3TPCBiH(b *testing.B) {
	small := dataset.TPCBiH(benchTPCSmall)
	large := dataset.TPCBiH(benchTPCLarge)
	for _, wq := range workload.TPCH() {
		b.Run(fmt.Sprintf("q=%s/sf=small/ap=Seq", wq.ID), func(b *testing.B) {
			benchWorkload(b, small, wq, harness.Seq)
		})
		b.Run(fmt.Sprintf("q=%s/sf=small/ap=Nat-align", wq.ID), func(b *testing.B) {
			benchWorkload(b, small, wq, harness.NatAlign)
		})
		b.Run(fmt.Sprintf("q=%s/sf=large/ap=Seq", wq.ID), func(b *testing.B) {
			benchWorkload(b, large, wq, harness.Seq)
		})
	}
}

// BenchmarkAblationCoalescePlacement regenerates ablation E7 (§9): a
// single final coalesce (justified by Lemma 6.1) vs coalescing after
// every operator.
func BenchmarkAblationCoalescePlacement(b *testing.B) {
	db := dataset.Employees(benchEmployees)
	for _, id := range []string{"join-1", "agg-1", "diff-2"} {
		wq, ok := workload.ByID(workload.Employees(), id)
		if !ok {
			b.Fatalf("missing %s", id)
		}
		b.Run("q="+id+"/coalesce=final", func(b *testing.B) {
			benchWorkload(b, db, wq, harness.Seq)
		})
		b.Run("q="+id+"/coalesce=every-op", func(b *testing.B) {
			benchWorkload(b, db, wq, harness.SeqNaive)
		})
	}
}

// BenchmarkAblationPreAggregation regenerates ablation E8 (§9):
// pre-aggregated sweep vs materialized split, isolated on the temporal
// aggregation operator itself.
func BenchmarkAblationPreAggregation(b *testing.B) {
	db := dataset.Employees(benchEmployees)
	sal, err := db.Table("salaries")
	if err != nil {
		b.Fatal(err)
	}
	aggs := []algebra.AggSpec{{Fn: krel.Avg, Arg: "salary", As: "avg_salary"}}
	for _, mode := range []struct {
		name   string
		preAgg bool
	}{{"preagg", true}, {"naive-split", false}} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.TemporalAggregate(sal, []string{"emp_no"}, aggs, mode.preAgg, db.Domain()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// streamingPipelinePlan is a pipeline-heavy physical plan in the shape
// REWR produces for Fig 4 chains: a Filter feeding the probe side of a
// TemporalJoin whose output streams through a Project. Under the
// materializing executor every operator allocates its full intermediate;
// under the streaming engine only the final result is materialized.
func streamingPipelinePlan() engine.Plan {
	return engine.ProjectP{
		Exprs: []algebra.NamedExpr{
			{Name: "emp_no", E: algebra.Col("emp_no")},
			{Name: "salary", E: algebra.Col("salary")},
			{Name: "title", E: algebra.Col("title")},
		},
		In: engine.JoinP{
			L: engine.FilterP{
				Pred: algebra.Gt(algebra.Col("salary"), algebra.IntC(45000)),
				In:   engine.ScanP{Name: "salaries"},
			},
			R:    engine.ScanP{Name: "titles"},
			Pred: algebra.Eq(algebra.Col("emp_no"), algebra.Col("r.emp_no")),
		},
	}
}

// BenchmarkStreamingPipeline compares the pull-based streaming iterator
// engine (ExecStream) against the operator-at-a-time materializing
// executor (Exec) on the Filter→Join→Project pipeline; the allocation
// report shows the B/op reduction from never materializing the filter
// and join intermediates.
func BenchmarkStreamingPipeline(b *testing.B) {
	db := dataset.Employees(benchEmployees)
	plan := streamingPipelinePlan()
	b.Run("engine=stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it, err := db.ExecStream(plan)
			if err != nil {
				b.Fatal(err)
			}
			tbl := engine.Materialize(it)
			it.Close()
			if tbl.Len() == 0 {
				b.Fatal("empty pipeline result")
			}
		}
	})
	b.Run("engine=materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tbl, err := db.Exec(plan)
			if err != nil {
				b.Fatal(err)
			}
			if tbl.Len() == 0 {
				b.Fatal("empty pipeline result")
			}
		}
	})
}

// BenchmarkAblationStreaming runs full REWR workload queries through the
// harness under the streaming engine (Seq) and the materializing
// ablation baseline (Seq-mat).
func BenchmarkAblationStreaming(b *testing.B) {
	db := dataset.Employees(benchEmployees)
	for _, id := range []string{"join-1", "join-3"} {
		wq, ok := workload.ByID(workload.Employees(), id)
		if !ok {
			b.Fatalf("missing %s", id)
		}
		b.Run("q="+id+"/engine=stream", func(b *testing.B) {
			benchWorkload(b, db, wq, harness.Seq)
		})
		b.Run("q="+id+"/engine=materialize", func(b *testing.B) {
			benchWorkload(b, db, wq, harness.SeqMat)
		})
	}
}

// BenchmarkOverlapJoin measures the endpoint-sorted interval-overlap
// sweep that replaced the single-bucket hash fallback for join
// predicates without equality conjuncts.
func BenchmarkOverlapJoin(b *testing.B) {
	db := dataset.Employees(benchEmployees)
	plan := engine.JoinP{
		L:    engine.ScanP{Name: "employees"},
		R:    engine.ScanP{Name: "dept_manager"},
		Pred: algebra.BoolC(true),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeslice measures the τ_T operator on a query result — the
// cheap snapshot extraction that representation systems promise.
func BenchmarkTimeslice(b *testing.B) {
	db := dataset.Employees(benchEmployees)
	wq, _ := workload.ByID(workload.Employees(), "agg-1")
	res, err := harness.RunWorkload(db, wq, harness.Seq)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt := 0
		for _, row := range res.Rows {
			iv := res.Interval(row)
			if iv.Begin <= 500 && 500 < iv.End {
				cnt++
			}
		}
	}
}

// BenchmarkAblationPushdown measures the selection-pushdown optimizer
// (an extension beyond the paper; see DESIGN.md §6) on the selective
// join query join-3.
func BenchmarkAblationPushdown(b *testing.B) {
	db := dataset.Employees(benchEmployees)
	wq, _ := workload.ByID(workload.Employees(), "join-3")
	q, err := wq.Translate(db)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name     string
		pushdown bool
	}{{"pushdown", true}, {"plain", false}} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.Run(db, q, rewrite.Options{Pushdown: mode.pushdown}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelPipeline measures the parallel exchange executor on
// the Filter→Join→Project pipeline at several worker counts, against
// the sequential streaming engine as the 1-worker baseline. Speedup
// tracks the available cores (GOMAXPROCS).
func BenchmarkParallelPipeline(b *testing.B) {
	db := dataset.Employees(benchEmployees)
	plan := streamingPipelinePlan()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				it, err := parallel.Exec(context.Background(), db, plan, parallel.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				tbl := engine.Materialize(it)
				it.Close()
				if tbl.Len() == 0 {
					b.Fatal("empty pipeline result")
				}
			}
		})
	}
}
