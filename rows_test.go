package snapk_test

import (
	"context"
	"strings"
	"testing"

	snapk "snapk"
)

// The cursor must stream the same rows Query materializes, and expose
// them through Columns/Scan/Values/Period.
func TestQueryRowsMatchesQuery(t *testing.T) {
	db := factoryDB(t)
	const sql = `SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')`
	want, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryRows(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 1 || cols[0] != "cnt" {
		t.Fatalf("Columns = %v", cols)
	}
	type key struct {
		cnt        int64
		begin, end int64
	}
	got := map[key]int{}
	n := 0
	for rows.Next() {
		var cnt int64
		if err := rows.Scan(&cnt); err != nil {
			t.Fatal(err)
		}
		b, e := rows.Period()
		got[key{cnt, b, e}]++
		if v := rows.Values(); len(v) != 1 || v[0].(int64) != cnt {
			t.Fatalf("Values = %v, want [%d]", v, cnt)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != want.Len() {
		t.Fatalf("cursor yielded %d rows, Query %d", n, want.Len())
	}
	for _, r := range want.Rows {
		k := key{r.Values[0].(int64), r.Begin, r.End}
		if got[k] == 0 {
			t.Fatalf("cursor missing row %v", k)
		}
		got[k]--
	}
}

// Parallel evaluation through the public API must agree with sequential
// on both the materialized and the cursor path.
func TestQueryRowsParallelAgrees(t *testing.T) {
	db := factoryDB(t)
	const sql = `SEQ VT (
		SELECT skill FROM assign
		EXCEPT ALL
		SELECT skill FROM works
	)`
	seq, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.SetParallelism(4).Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("parallel result differs:\nseq:\n%s\npar:\n%s", seq, par)
	}
	rows, err := db.QueryRows(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if n != seq.Len() {
		t.Fatalf("parallel cursor yielded %d rows, want %d", n, seq.Len())
	}
}

// Scan type checking: mismatches and NULLs must error with the column
// name; *any accepts everything.
func TestRowsScanTypes(t *testing.T) {
	db := snapk.New(0, 10)
	tbl, err := db.CreateTable("t", "s", "n")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(0, 5, "hello", nil); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryRows(context.Background(), `SELECT s, n FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no rows")
	}
	var s string
	var n any
	if err := rows.Scan(&s, &n); err != nil {
		t.Fatal(err)
	}
	if s != "hello" || n != nil {
		t.Fatalf("scanned (%q, %v)", s, n)
	}
	var i int64
	if err := rows.Scan(&i, &n); err == nil || !strings.Contains(err.Error(), "column s") {
		t.Fatalf("type mismatch error = %v", err)
	}
	if err := rows.Scan(&s, &i); err == nil || !strings.Contains(err.Error(), "NULL") {
		t.Fatalf("NULL scan error = %v", err)
	}
	if err := rows.Scan(&s); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

// Canceling the context mid-iteration must end the stream and surface
// through Err; Close stays idempotent.
func TestQueryRowsCancellation(t *testing.T) {
	db := snapk.New(0, 1000)
	tbl, err := db.CreateTable("t", "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		if err := tbl.Insert(i%900, i%900+10, i); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.SetParallelism(4).QueryRows(ctx, `SELECT x FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no first row")
	}
	cancel()
	for rows.Next() { // drains whatever was already buffered, then stops
	}
	if rows.Err() == nil {
		t.Fatal("Err must report the cancellation")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Fatal("Next after Close must be false")
	}
}

// QueryRows on bad SQL must fail up front, not at iteration time.
func TestQueryRowsParseError(t *testing.T) {
	db := factoryDB(t)
	if _, err := db.QueryRows(context.Background(), `THIS IS NOT SQL`); err == nil {
		t.Fatal("parse error expected")
	}
}
