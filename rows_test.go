package snapk_test

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	snapk "snapk"
	"snapk/internal/obs"
)

// The cursor must stream the same rows Query materializes, and expose
// them through Columns/Scan/Values/Period.
func TestQueryRowsMatchesQuery(t *testing.T) {
	db := factoryDB(t)
	const sql = `SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')`
	want, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryRows(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 1 || cols[0] != "cnt" {
		t.Fatalf("Columns = %v", cols)
	}
	type key struct {
		cnt        int64
		begin, end int64
	}
	got := map[key]int{}
	n := 0
	for rows.Next() {
		var cnt int64
		if err := rows.Scan(&cnt); err != nil {
			t.Fatal(err)
		}
		b, e := rows.Period()
		got[key{cnt, b, e}]++
		if v := rows.Values(); len(v) != 1 || v[0].(int64) != cnt {
			t.Fatalf("Values = %v, want [%d]", v, cnt)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != want.Len() {
		t.Fatalf("cursor yielded %d rows, Query %d", n, want.Len())
	}
	for _, r := range want.Rows {
		k := key{r.Values[0].(int64), r.Begin, r.End}
		if got[k] == 0 {
			t.Fatalf("cursor missing row %v", k)
		}
		got[k]--
	}
}

// Parallel evaluation through the public API must agree with sequential
// on both the materialized and the cursor path.
func TestQueryRowsParallelAgrees(t *testing.T) {
	db := factoryDB(t)
	const sql = `SEQ VT (
		SELECT skill FROM assign
		EXCEPT ALL
		SELECT skill FROM works
	)`
	seq, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.SetParallelism(4).Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("parallel result differs:\nseq:\n%s\npar:\n%s", seq, par)
	}
	rows, err := db.QueryRows(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if n != seq.Len() {
		t.Fatalf("parallel cursor yielded %d rows, want %d", n, seq.Len())
	}
}

// Scan type checking: mismatches and NULLs must error with the column
// name; *any accepts everything.
func TestRowsScanTypes(t *testing.T) {
	db := snapk.New(0, 10)
	tbl, err := db.CreateTable("t", "s", "n")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(0, 5, "hello", nil); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryRows(context.Background(), `SELECT s, n FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no rows")
	}
	var s string
	var n any
	if err := rows.Scan(&s, &n); err != nil {
		t.Fatal(err)
	}
	if s != "hello" || n != nil {
		t.Fatalf("scanned (%q, %v)", s, n)
	}
	var i int64
	if err := rows.Scan(&i, &n); err == nil || !strings.Contains(err.Error(), "column s") {
		t.Fatalf("type mismatch error = %v", err)
	}
	if err := rows.Scan(&s, &i); err == nil || !strings.Contains(err.Error(), "NULL") {
		t.Fatalf("NULL scan error = %v", err)
	}
	if err := rows.Scan(&s); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

// Canceling the context mid-iteration must end the stream and surface
// through Err; Close stays idempotent.
func TestQueryRowsCancellation(t *testing.T) {
	db := snapk.New(0, 1000)
	tbl, err := db.CreateTable("t", "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		if err := tbl.Insert(i%900, i%900+10, i); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.SetParallelism(4).QueryRows(ctx, `SELECT x FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no first row")
	}
	cancel()
	for rows.Next() { // drains whatever was already buffered, then stops
	}
	if rows.Err() == nil {
		t.Fatal("Err must report the cancellation")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Fatal("Next after Close must be false")
	}
}

// Cursor edge cases around the Next/Scan/Close lifecycle: accessors
// before the first Next, Scan after Close, and Next after a mid-stream
// Close over a PARALLEL DIFFERENCE plan — the pipeline with the most
// fragment goroutines — pinning that no goroutines leak and Err stays
// nil on a clean close.
func TestRowsLifecycleEdgeCases(t *testing.T) {
	db := snapk.New(0, 2000)
	tl, err := db.CreateTable("l", "x")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := db.CreateTable("r", "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 800; i++ {
		if err := tl.Insert(i%1900, i%1900+20, i%40); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := tr.Insert(i%1900+5, i%1900+15, i%40); err != nil {
				t.Fatal(err)
			}
		}
	}
	const sql = `SEQ VT (SELECT x FROM l EXCEPT ALL SELECT x FROM r)`

	base := runtime.NumGoroutine()
	rows, err := db.SetParallelism(4).QueryRows(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}

	// Before the first Next: Period and Values are zero-valued, Scan
	// errors.
	if b, e := rows.Period(); b != 0 || e != 0 {
		t.Fatalf("Period before Next = (%d, %d)", b, e)
	}
	if v := rows.Values(); v != nil {
		t.Fatalf("Values before Next = %v", v)
	}
	var x int64
	if err := rows.Scan(&x); err == nil {
		t.Fatal("Scan before Next must error")
	}

	// Mid-stream close: consume a few rows, then Close while the
	// parallel fragments are still producing.
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatal("difference produced fewer than 3 rows; enlarge the dataset")
		}
	}
	if err := rows.Scan(&x); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// After Close: Next is false, Scan errors, Period/Values are
	// zero-valued, and a clean close is not an error.
	if rows.Next() {
		t.Fatal("Next after Close must be false")
	}
	if err := rows.Scan(&x); err == nil {
		t.Fatal("Scan after Close must error")
	}
	if b, e := rows.Period(); b != 0 || e != 0 {
		t.Fatalf("Period after Close = (%d, %d)", b, e)
	}
	if v := rows.Values(); v != nil {
		t.Fatalf("Values after Close = %v", v)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err after clean close = %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// Every fragment goroutine of the torn-down parallel difference must
	// exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked after Close: %d running, want <= %d\n%s",
			n, base, buf[:runtime.Stack(buf, true)])
	}
}

// Repeated identical sequential difference queries must stream rows in
// the identical order — the regression test for the map-iteration
// nondeterminism of the blocking diff (the cursor exposes emission
// order directly; only the materialized Result hides it by sorting).
func TestRowsDiffOrderDeterministic(t *testing.T) {
	db := snapk.New(0, 500)
	tl, err := db.CreateTable("l", "x")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := db.CreateTable("r", "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 60; i++ {
		if err := tl.Insert(i, i+30, i%17); err != nil {
			t.Fatal(err)
		}
		if err := tr.Insert(i+2, i+20, i%5); err != nil {
			t.Fatal(err)
		}
	}
	const sql = `SEQ VT (SELECT x FROM l EXCEPT ALL SELECT x FROM r)`
	read := func() []string {
		rows, err := db.QueryRows(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var out []string
		for rows.Next() {
			var x int64
			if err := rows.Scan(&x); err != nil {
				t.Fatal(err)
			}
			b, e := rows.Period()
			out = append(out, fmt.Sprintf("%d@[%d,%d)", x, b, e))
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := read()
	if len(ref) == 0 {
		t.Fatal("difference is empty; pick a denser input")
	}
	for run := 0; run < 8; run++ {
		got := read()
		if len(got) != len(ref) {
			t.Fatalf("run %d: %d rows, want %d", run, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("run %d: row %d = %s, want %s — difference stream order is nondeterministic", run, i, got[i], ref[i])
			}
		}
	}
}

// QueryRows on bad SQL must fail up front, not at iteration time.
func TestQueryRowsParseError(t *testing.T) {
	db := factoryDB(t)
	if _, err := db.QueryRows(context.Background(), `THIS IS NOT SQL`); err == nil {
		t.Fatal("parse error expected")
	}
}

// Draining a cursor must flush its row count to the process-wide
// observability registry exactly once — the end-of-stream flush and the
// Close flush must not double-count.
func TestRowsFlushEmittedOnce(t *testing.T) {
	db := factoryDB(t)
	before := obs.Default.RowsEmitted.Load()
	rows, err := db.QueryRows(context.Background(), `SEQ VT (SELECT name FROM works)`)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for rows.Next() {
		n++
	}
	if n == 0 {
		t.Fatal("empty result")
	}
	rows.Close() // second flush path; must be a no-op
	if got := obs.Default.RowsEmitted.Load() - before; got != n {
		t.Fatalf("registry delta = %d, want %d (exactly the drained rows)", got, n)
	}
}
