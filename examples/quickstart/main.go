// Command quickstart reproduces the paper's running example (Figure 1):
// the works/assign factory database, snapshot aggregation Q_onduty and
// snapshot bag difference Q_skillreq — through the public snapk API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	snapk "snapk"
)

func main() {
	// The time domain is one day, in hours: [0, 24).
	db := snapk.New(0, 24)

	works, err := db.CreateTable("works", "name", "skill")
	if err != nil {
		log.Fatal(err)
	}
	// Figure 1a: factory workers, their skills, and when they are on duty.
	must(works.Insert(3, 10, "Ann", "SP"))
	must(works.Insert(8, 16, "Joe", "NS"))
	must(works.Insert(8, 16, "Sam", "SP"))
	must(works.Insert(18, 20, "Ann", "SP"))

	assign, err := db.CreateTable("assign", "mach", "skill")
	if err != nil {
		log.Fatal(err)
	}
	// Machines that need a worker with a specific skill.
	must(assign.Insert(3, 12, "M1", "SP"))
	must(assign.Insert(6, 14, "M2", "SP"))
	must(assign.Insert(3, 16, "M3", "NS"))

	// Q_onduty (Example 1.1): how many specialized workers are on duty at
	// each point in time? Note the cnt = 0 rows over the gaps — these are
	// the safety violations that AG-buggy systems silently omit.
	fmt.Println("Q_onduty — SELECT count(*) AS cnt FROM works WHERE skill = 'SP'")
	res, err := db.Query(`SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	// Q_skillreq (Example 1.2): which skills are missing, and when? Bag
	// difference subtracts multiplicities per snapshot; BD-buggy systems
	// would drop the SP rows entirely.
	fmt.Println("Q_skillreq — SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works")
	res, err = db.Query(`SEQ VT (
		SELECT skill FROM assign
		EXCEPT ALL
		SELECT skill FROM works
	)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	// The timeslice operator: the snapshot of the on-duty count at 08:00.
	res, err = db.Query(`SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot at 08:00 -> cnt = %v\n", res.At(8)[0][0])

	// The streaming cursor API: QueryRows consumes the rewritten plan's
	// pipeline row by row instead of materializing a Result — the way to
	// process huge results in constant client memory. Canceling the
	// context stops the stream and tears down the pipeline.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := db.QueryRows(ctx, `SEQ VT (SELECT name FROM works WHERE skill = 'SP')`)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Println("\nstreaming cursor over Q_names:")
	for rows.Next() {
		var name string
		if err := rows.Scan(&name); err != nil {
			log.Fatal(err)
		}
		begin, end := rows.Period()
		fmt.Printf("  %s on duty during [%d, %d)\n", name, begin, end)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
