// Command factory is a larger safety-monitoring scenario in the spirit of
// the paper's introduction: a factory runs a week of shifts (time domain
// in hours, [0, 168)) and must always have enough certified operators on
// the floor. Snapshot semantics answers "when was the requirement
// violated?" directly — including during periods with *no* staff at all,
// which is exactly what the aggregation-gap bug hides in other systems.
//
// Run with: go run ./examples/factory
package main

import (
	"fmt"
	"log"

	snapk "snapk"
)

func main() {
	const week = 168 // hours
	db := snapk.New(0, week)

	shifts, err := db.CreateTable("shifts", "worker", "cert", "site")
	if err != nil {
		log.Fatal(err)
	}
	// A repeating weekday pattern with deliberate holes: nobody staffs the
	// night hours on Wednesday, and the weekend is thin.
	type shift struct {
		day    int64
		from   int64
		to     int64
		worker string
		cert   string
		site   string
	}
	var plan []shift
	for day := int64(0); day < 5; day++ {
		plan = append(plan,
			shift{day, 6, 14, "ann", "welder", "north"},
			shift{day, 6, 14, "bob", "welder", "north"},
			shift{day, 14, 22, "cho", "welder", "north"},
			shift{day, 8, 16, "dee", "inspector", "north"},
			shift{day, 6, 14, "eli", "welder", "south"},
		)
		if day != 2 { // Wednesday night goes unstaffed
			plan = append(plan, shift{day, 22, 24, "fay", "welder", "north"})
		}
	}
	plan = append(plan,
		shift{5, 8, 12, "ann", "welder", "north"},
		shift{6, 10, 12, "cho", "welder", "north"},
	)
	for _, s := range plan {
		base := s.day * 24
		if err := shifts.Insert(base+s.from, base+s.to, s.worker, s.cert, s.site); err != nil {
			log.Fatal(err)
		}
	}

	demand, err := db.CreateTable("demand", "cert", "site")
	if err != nil {
		log.Fatal(err)
	}
	// The north site needs two welders around the clock and one
	// inspector during the working week; multiplicity encodes headcount.
	for i := 0; i < 2; i++ {
		must(demand.Insert(0, week, "welder", "north"))
	}
	must(demand.Insert(0, 120, "inspector", "north"))

	// 1. Staffing level over time at the north site.
	fmt.Println("== welders on duty at north, over the week ==")
	res, err := db.Query(`SEQ VT (
		SELECT count(*) AS welders
		FROM shifts
		WHERE cert = 'welder' AND site = 'north'
	)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	// 2. Unmet demand: for each certification/site, the open positions at
	// each time — bag difference subtracts available heads from demand.
	fmt.Println("== unmet demand (open positions) ==")
	res, err = db.Query(`SEQ VT (
		SELECT cert, site FROM demand
		EXCEPT ALL
		SELECT cert, site FROM shifts
	)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	// 3. Per-site coverage summary: min/max staffing per site over time.
	fmt.Println("== staffing per site (count per snapshot) ==")
	res, err = db.Query(`SEQ VT (
		SELECT site, count(*) AS staffed
		FROM shifts
		GROUP BY site
	)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d result rows; first hours of the plan:\n", res.Len())
	fmt.Println(trim(res, 12))

	// 4. Count how many hours the north site had zero welders — readable
	// straight off the coalesced count result.
	res, err = db.Query(`SEQ VT (
		SELECT count(*) AS welders
		FROM shifts
		WHERE cert = 'welder' AND site = 'north'
	)`)
	if err != nil {
		log.Fatal(err)
	}
	var uncovered int64
	for _, row := range res.Rows {
		if row.Values[0].(int64) == 0 {
			uncovered += row.End - row.Begin
		}
	}
	fmt.Printf("hours with ZERO welders at north: %d of %d\n", uncovered, week)
}

func trim(r *snapk.Result, n int) *snapk.Result {
	if len(r.Rows) <= n {
		return r
	}
	return &snapk.Result{Columns: r.Columns, Rows: r.Rows[:n]}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
