// Command payroll runs HR analytics over an Employees-style temporal
// database (the workload family of the paper's §10 evaluation): salary
// histories, department assignments and manager terms, all as period
// relations. It demonstrates temporal joins, grouped snapshot
// aggregation, and snapshot bag difference on a realistic schema.
//
// Run with: go run ./examples/payroll
package main

import (
	"fmt"
	"log"

	snapk "snapk"
)

func main() {
	// Ten years in months: [0, 120).
	db := snapk.New(0, 120)

	employees := mustTable(db, "employees", "emp_no", "name")
	salaries := mustTable(db, "salaries", "emp_no", "salary")
	deptEmp := mustTable(db, "dept_emp", "emp_no", "dept")
	managers := mustTable(db, "dept_manager", "emp_no", "dept")

	type hire struct {
		empNo      int
		name       string
		dept       string
		from, to   int64
		startSal   int64
		raseEveryM int64
	}
	staff := []hire{
		{1, "Iris", "eng", 0, 120, 60000, 24},
		{2, "Jack", "eng", 6, 96, 52000, 24},
		{3, "Kim", "eng", 30, 120, 70000, 36},
		{4, "Lee", "sales", 0, 60, 40000, 12},
		{5, "Mia", "sales", 12, 120, 45000, 24},
		{6, "Noa", "ops", 24, 84, 48000, 30},
	}
	for _, h := range staff {
		must(employees.Insert(h.from, h.to, h.empNo, h.name))
		must(deptEmp.Insert(h.from, h.to, h.empNo, h.dept))
		sal := h.startSal
		for t := h.from; t < h.to; t += h.raseEveryM {
			end := t + h.raseEveryM
			if end > h.to {
				end = h.to
			}
			must(salaries.Insert(t, end, h.empNo, sal))
			sal += 5000
		}
	}
	// Manager terms: Iris runs eng for the first half, Kim the second;
	// Lee and then Mia run sales.
	must(managers.Insert(0, 60, 1, "eng"))
	must(managers.Insert(60, 120, 3, "eng"))
	must(managers.Insert(0, 60, 4, "sales"))
	must(managers.Insert(60, 120, 5, "sales"))

	// Average salary per department over time (agg-1 of the paper's
	// workload). The result changes exactly at hires, departures and
	// raises — and nowhere else, thanks to the unique coalesced encoding.
	fmt.Println("== average salary per department ==")
	res, err := db.Query(`SEQ VT (
		SELECT d.dept AS dept, avg(s.salary) AS avg_salary
		FROM salaries s JOIN dept_emp d ON s.emp_no = d.emp_no
		GROUP BY d.dept
	)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	// Salary of each manager over time (join-4 flavour).
	fmt.Println("== manager salaries ==")
	res, err = db.Query(`SEQ VT (
		SELECT e.name AS name, m.dept AS dept, s.salary AS salary
		FROM dept_manager m
		JOIN salaries s ON m.emp_no = s.emp_no
		JOIN employees e ON m.emp_no = e.emp_no
	)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	// Non-managers over time (diff-1): bag difference keeps every copy of
	// employees not currently serving as manager.
	fmt.Println("== employees that are not managers ==")
	res, err = db.Query(`SEQ VT (
		SELECT e.emp_no AS emp_no FROM employees e
		EXCEPT ALL
		SELECT m.emp_no AS emp_no FROM dept_manager m
	)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	// Company-wide headcount, including the months before anyone was
	// hired (count 0 — the rows the AG bug would hide).
	fmt.Println("== engineering headcount over time ==")
	res, err = db.Query(`SEQ VT (
		SELECT count(*) AS heads
		FROM dept_emp d
		WHERE d.dept = 'eng'
	)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
}

func mustTable(db *snapk.DB, name string, cols ...string) *snapk.Table {
	t, err := db.CreateTable(name, cols...)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
