// Command provenance demonstrates that the framework really works for
// *any* semiring K, the central generality claim of the paper: the same
// period K-relation machinery evaluates queries under multiset (ℕ), set
// (𝔹) and which-provenance (Lineage) annotations, with the timeslice
// operator acting as a semiring homomorphism in each case.
//
// This example uses the research-level internal API (the logical model of
// Section 6) rather than the SQL facade, since SQL period relations only
// encode the ℕ instantiation (Section 8).
//
// Run with: go run ./examples/provenance
package main

import (
	"fmt"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/period"
	"snapk/internal/semiring"
	"snapk/internal/telement"
	"snapk/internal/tuple"
)

func main() {
	dom := interval.NewDomain(0, 24)

	// ----- ℕ: multiset semantics -------------------------------------
	ndb := period.NewDB[int64](semiring.N, dom)
	works := ndb.CreateRelation("works", tuple.NewSchema("name", "skill"))
	works.AddPeriod(tuple.Tuple{tuple.String_("Ann"), tuple.String_("SP")}, interval.New(3, 10), 1)
	works.AddPeriod(tuple.Tuple{tuple.String_("Sam"), tuple.String_("SP")}, interval.New(8, 16), 1)
	works.AddPeriod(tuple.Tuple{tuple.String_("Joe"), tuple.String_("NS")}, interval.New(8, 16), 1)

	skills := algebra.ProjectCols(algebra.Rel{Name: "works"}, "skill")
	nres, err := ndb.Eval(skills)
	if err != nil {
		panic(err)
	}
	fmt.Println("ℕ (how many):", nres)

	// ----- 𝔹: set semantics, via the NToB homomorphism ---------------
	balg := telement.NewMAlgebra[bool](semiring.B, dom)
	bdb := period.NewDB[bool](semiring.B, dom)
	bdb.AddRelation("works", period.Hom[int64, bool](works, balg, semiring.NToB))
	bres, err := bdb.Eval(skills)
	if err != nil {
		panic(err)
	}
	fmt.Println("𝔹 (whether):", bres)

	// Homomorphisms commute with queries: mapping the ℕ result to 𝔹
	// gives the same relation as evaluating under 𝔹 directly.
	viaHom := period.Hom[int64, bool](nres, balg, semiring.NToB)
	fmt.Println("h(Q(R)) == Q(h(R)):", viaHom.Equal(bres))

	// ----- Lineage: which input tuples support each result? ----------
	ldb := period.NewDB[semiring.LineageValue](noMonusLineage{}, dom)
	lworks := ldb.CreateRelation("works", tuple.NewSchema("name", "skill"))
	lworks.AddPeriod(tuple.Tuple{tuple.String_("Ann"), tuple.String_("SP")}, interval.New(3, 10), semiring.LineageOf("w1"))
	lworks.AddPeriod(tuple.Tuple{tuple.String_("Sam"), tuple.String_("SP")}, interval.New(8, 16), semiring.LineageOf("w2"))
	lworks.AddPeriod(tuple.Tuple{tuple.String_("Joe"), tuple.String_("NS")}, interval.New(8, 16), semiring.LineageOf("w3"))
	lres, err := ldb.Eval(skills)
	if err != nil {
		panic(err)
	}
	fmt.Println("Lineage (from which rows):", lres)

	// The timeslice homomorphism: at 09:00 the (SP) tuple is supported by
	// both w1 and w2; at 14:00 only by w2.
	sp := tuple.Tuple{tuple.String_("SP")}
	at9 := ldb.Algebra().Timeslice(lres.Annotation(sp), 9)
	at14 := ldb.Algebra().Timeslice(lres.Annotation(sp), 14)
	fmt.Printf("lineage of (SP) at 09:00 = %v, at 14:00 = %v\n", at9, at14)
}

// noMonusLineage adapts the Lineage semiring to the MSemiring interface
// the period DB expects; difference is not meaningful for lineage, so the
// monus degenerates to the left argument (queries in this example are
// RA+ only and never invoke it).
type noMonusLineage struct{ semiring.Lineage }

func (noMonusLineage) Monus(a, b semiring.LineageValue) semiring.LineageValue { return a }
func (noMonusLineage) Leq(a, b semiring.LineageValue) bool                    { return a == b }
