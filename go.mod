module snapk

go 1.24
