// Package snapk implements snapshot semantics for temporal multiset
// relations, reproducing Dignös, Glavic, Niu, Böhlen and Gamper:
// "Snapshot Semantics for Temporal Multiset Relations", PVLDB 12(6),
// 2019 (DOI 10.14778/3311880.3311882).
//
// A temporal relation is stored as an SQL period relation: every row
// carries a validity interval [begin, end). A non-temporal SQL query Q
// submitted through Query is interpreted under snapshot semantics: its
// result at every point in time T equals Q evaluated over the snapshot of
// the database at T. Unlike the native temporal features of existing
// DBMSs, this implementation is provably snapshot-reducible for the full
// relational algebra with aggregation over bags — it is free of the
// aggregation gap (AG) bug and the bag difference (BD) bug — and always
// returns the unique K-coalesced interval encoding of the result.
//
// The three-level architecture of the paper is mirrored by the internal
// packages: snapshot K-relations (internal/snapshot, the abstract model),
// period K-relations over the period semiring Kᵀ (internal/telement and
// internal/period, the logical model), and the REWR rewriting over SQL
// period relations executed by an embedded multiset engine
// (internal/rewrite and internal/engine, the implementation). Rewritten
// plans run on a pull-based streaming iterator engine: selection,
// projection, union and the probe side of the temporal join are
// pipelined and never materialize intermediates, while the blocking
// sweep operators (split, aggregation, difference, coalesce) consume
// their input streams at a materialization boundary.
//
// Quick start:
//
//	db := snapk.New(0, 24)
//	works, _ := db.CreateTable("works", "name", "skill")
//	works.Insert(3, 10, "Ann", "SP")
//	works.Insert(8, 16, "Joe", "NS")
//	res, _ := db.Query(`SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')`)
//	fmt.Println(res)
package snapk

import (
	"fmt"

	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// DB is an in-memory temporal database storing SQL period relations over
// a finite integer time domain [Min, Max).
type DB struct {
	eng *engine.DB
	// parallelism is the worker count used by Seq query evaluation and
	// QueryRows; <= 1 means sequential.
	parallelism int
	// limits is the per-query resource-governor configuration applied to
	// Seq query evaluation and QueryRows; the zero value disables it.
	limits QueryLimits
}

// QueryLimits configures the per-query resource governor: a wall-clock
// Timeout, a RowLimit on emitted result rows, and a MemBudget in bytes
// over tracked operator state (sweep state, hash-join build sides,
// exchange queue depth). Zero fields disable the corresponding limit;
// the zero value disables governing entirely.
type QueryLimits = engine.Limits

// Typed resource-governor errors, re-exported so callers can errors.Is
// against Rows.Err (a deadline surfaces as context.DeadlineExceeded).
var (
	// ErrRowLimit ends a query whose result exceeded the configured
	// row limit.
	ErrRowLimit = engine.ErrRowLimit
	// ErrMemBudget ends a query whose tracked operator state exceeded
	// the configured memory budget.
	ErrMemBudget = engine.ErrMemBudget
)

// New returns an empty database over the time domain [minTime, maxTime).
// Time points are opaque integers; map them to hours, days or
// milliseconds as the application requires. New panics if minTime >=
// maxTime.
func New(minTime, maxTime int64) *DB {
	return &DB{eng: engine.NewDB(interval.NewDomain(minTime, maxTime))}
}

// SetParallelism sets the number of worker goroutines per exchange used
// by Seq query evaluation (Query, QueryWith and QueryRows): n > 1 runs
// rewritten plans on the parallel execution subsystem, n <= 1 (the
// default) on the sequential streaming engine. Results are
// multiset-identical at every setting. It returns db for chaining.
func (db *DB) SetParallelism(n int) *DB {
	db.parallelism = n
	return db
}

// SetQueryLimits installs per-query resource limits enforced on every
// subsequent Seq evaluation (Query, QueryWith) and streaming cursor
// (QueryRows): a tripped limit fails that query — Query returns the
// governor's typed error, a cursor ends its stream and reports it
// through Rows.Err — without affecting the database or other queries.
// The zero value removes all limits. It returns db for chaining.
func (db *DB) SetQueryLimits(l QueryLimits) *DB {
	db.limits = l
	return db
}

// MinTime returns the inclusive lower bound of the time domain.
func (db *DB) MinTime() int64 { return db.eng.Domain().Min }

// MaxTime returns the exclusive upper bound of the time domain.
func (db *DB) MaxTime() int64 { return db.eng.Domain().Max }

// Table is a handle for loading rows into a period relation.
type Table struct {
	db   *DB
	name string
	tbl  *engine.Table
}

// CreateTable registers an empty period relation with the given data
// columns. The validity period is stored separately; do not declare
// period attributes as columns.
func (db *DB) CreateTable(name string, columns ...string) (*Table, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("snapk: table %q needs at least one column", name)
	}
	for _, c := range columns {
		if c == engine.BeginCol || c == engine.EndCol {
			return nil, fmt.Errorf("snapk: column name %q is reserved for the period encoding", c)
		}
	}
	if _, err := db.eng.Table(name); err == nil {
		return nil, fmt.Errorf("snapk: table %q already exists", name)
	}
	schema, err := makeSchema(columns)
	if err != nil {
		return nil, err
	}
	t := db.eng.CreateTable(name, schema)
	return &Table{db: db, name: name, tbl: t}, nil
}

func makeSchema(columns []string) (s tuple.Schema, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("snapk: %v", r)
		}
	}()
	return tuple.NewSchema(columns...), nil
}

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

// Columns returns the table's data column names.
func (t *Table) Columns() []string { return append([]string{}, t.tbl.DataSchema().Cols...) }

// Rows returns the current number of stored rows (counting duplicates).
func (t *Table) Rows() int { return t.tbl.Len() }

// Insert appends one row valid during [begin, end). Values must match
// the column count; supported Go types are int, int64, float64, string,
// bool and nil (SQL NULL). Inserting the same values repeatedly raises
// the tuple's multiplicity, as in any multiset relation.
func (t *Table) Insert(begin, end int64, values ...any) error {
	iv, ok := interval.TryNew(begin, end)
	if !ok {
		return fmt.Errorf("snapk: invalid period [%d, %d)", begin, end)
	}
	if !t.db.eng.Domain().ContainsInterval(iv) {
		return fmt.Errorf("snapk: period [%d, %d) outside time domain %s", begin, end, t.db.eng.Domain())
	}
	if len(values) != t.tbl.DataArity() {
		return fmt.Errorf("snapk: table %s has %d columns, got %d values", t.name, t.tbl.DataArity(), len(values))
	}
	row := make(tuple.Tuple, len(values))
	for i, v := range values {
		tv, err := toValue(v)
		if err != nil {
			return fmt.Errorf("snapk: column %s: %w", t.tbl.DataSchema().Cols[i], err)
		}
		row[i] = tv
	}
	t.tbl.Append(row, iv, 1)
	return nil
}

func toValue(v any) (tuple.Value, error) {
	switch x := v.(type) {
	case nil:
		return tuple.Null, nil
	case int:
		return tuple.Int(int64(x)), nil
	case int64:
		return tuple.Int(x), nil
	case float64:
		return tuple.Float(x), nil
	case string:
		return tuple.String_(x), nil
	case bool:
		return tuple.Bool(x), nil
	default:
		return tuple.Value{}, fmt.Errorf("unsupported value type %T", v)
	}
}

func fromValue(v tuple.Value) any {
	switch v.Kind() {
	case tuple.KindNull:
		return nil
	case tuple.KindInt:
		return v.AsInt()
	case tuple.KindFloat:
		return v.AsFloat()
	case tuple.KindString:
		return v.AsString()
	case tuple.KindBool:
		return v.AsBool()
	default:
		return nil
	}
}
