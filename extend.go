package snapk

import (
	"fmt"
	"io"

	"snapk/internal/algebra"
	"snapk/internal/csvio"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/period"
	"snapk/internal/semiring"
	"snapk/internal/snapshot"
	"snapk/internal/sqlfe"
	"snapk/internal/telement"
	"snapk/internal/tuple"
)

// QueryAt evaluates a snapshot query at a single time point t — the
// timeslice operator τ_t composed with the query. Because τ_t is a
// semiring homomorphism that commutes with queries (Thm 6.3/7.2 of the
// paper), QueryAt slices the *base tables* at t first and evaluates the
// query non-temporally over that single snapshot, instead of computing
// the full temporal result; TestQueryAtEqualsResultSlice verifies the
// two strategies coincide. Rows are returned with their per-snapshot
// multiplicities expanded, like any bag result.
func (db *DB) QueryAt(sql string, t int64) ([][]any, error) {
	if t < db.MinTime() || t >= db.MaxTime() {
		return nil, fmt.Errorf("snapk: time %d outside domain [%d, %d)", t, db.MinTime(), db.MaxTime())
	}
	q, err := sqlfe.ParseAndTranslate(sql, db.eng)
	if err != nil {
		return nil, err
	}
	// A one-point snapshot database containing only the slices at t.
	sdb := snapshot.NewDB[int64](semiring.N, interval.NewDomain(t, t+1))
	for _, name := range algebra.BaseRelations(q) {
		tbl, err := db.eng.Table(name)
		if err != nil {
			return nil, err
		}
		rel := sdb.CreateRelation(name, tbl.DataSchema())
		n := tbl.DataArity()
		for _, row := range tbl.Rows {
			if tbl.Interval(row).Contains(t) {
				rel.AddAt(t, row[:n], 1)
			}
		}
	}
	res, err := sdb.Eval(q)
	if err != nil {
		return nil, err
	}
	var out [][]any
	for _, e := range res.Timeslice(t).Entries() {
		vals := make([]any, len(e.Tuple))
		for i, v := range e.Tuple {
			vals[i] = fromValue(v)
		}
		for m := int64(0); m < e.Ann; m++ {
			out = append(out, vals)
		}
	}
	return out, nil
}

// QuerySet evaluates a snapshot query under SET semantics (the 𝔹
// instantiation of the framework): duplicates are absorbed and the result
// uses classic set-based coalescing, i.e. maximal intervals during which
// a tuple is present at all. Aggregation is not defined under set
// semantics (Section 7.2); use Query for bag aggregation.
func (db *DB) QuerySet(sql string) (*Result, error) {
	q, err := sqlfe.ParseAndTranslate(sql, db.eng)
	if err != nil {
		return nil, err
	}
	dom := db.eng.Domain()
	balg := telement.NewMAlgebra[bool](semiring.B, dom)
	nalg := telement.NewMAlgebra[int64](semiring.N, dom)
	bdb := period.NewDB[bool](semiring.B, dom)
	for _, name := range algebra.BaseRelations(q) {
		t, err := db.eng.Table(name)
		if err != nil {
			return nil, err
		}
		bdb.AddRelation(name, period.Hom[int64, bool](t.ToPeriodRelation(nalg), balg, semiring.NToB))
	}
	rel, err := bdb.Eval(q)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: append([]string{}, rel.Schema().Cols...)}
	for _, e := range rel.Entries() {
		vals := make([]any, len(e.Tuple))
		for i, v := range e.Tuple {
			vals[i] = fromValue(v)
		}
		for _, s := range e.Ann.Segs() {
			res.Rows = append(res.Rows, Row{Values: vals, Begin: s.Iv.Begin, End: s.Iv.End})
		}
	}
	return res, nil
}

// Delete removes tuples matching the SQL condition during [begin, end):
// the period of every matching row is reduced by interval subtraction,
// and rows that become empty disappear. This implements valid-time
// deletion over annotated period relations — one of the paper's
// future-work directions (§11, "updates over annotated relations").
// It returns the number of affected input rows.
func (t *Table) Delete(begin, end int64, where string) (int, error) {
	iv, ok := interval.TryNew(begin, end)
	if !ok {
		return 0, fmt.Errorf("snapk: invalid period [%d, %d)", begin, end)
	}
	pred := algebra.BoolC(true)
	if where != "" {
		// Parse the condition through a throwaway SELECT so the full
		// WHERE grammar is available.
		q, err := sqlfe.ParseAndTranslate(
			fmt.Sprintf("SELECT * FROM %s WHERE %s", t.name, where), t.db.eng)
		if err != nil {
			return 0, err
		}
		sel, okSel := q.(algebra.Select)
		if !okSel {
			return 0, fmt.Errorf("snapk: condition %q did not parse to a selection", where)
		}
		pred = sel.Pred
	}
	compiled, err := algebra.Compile(pred, t.tbl.DataSchema())
	if err != nil {
		return 0, err
	}
	affected := 0
	var kept []tuple.Tuple
	n := t.tbl.DataArity()
	for _, row := range t.tbl.Rows {
		data := row[:n]
		riv := t.tbl.Interval(row)
		if !algebra.Truthy(compiled(data)) || !riv.Overlaps(iv) {
			kept = append(kept, row)
			continue
		}
		affected++
		// Keep the fragments of the row's period outside the deletion
		// window.
		if riv.Begin < iv.Begin {
			kept = append(kept, periodRow(data, riv.Begin, iv.Begin))
		}
		if iv.End < riv.End {
			kept = append(kept, periodRow(data, iv.End, riv.End))
		}
	}
	t.tbl.SetRows(kept) // bulk mutation: drops the cached sortedness metadata
	return affected, nil
}

func periodRow(data tuple.Tuple, b, e int64) tuple.Tuple {
	row := data.Clone()
	return append(row, tuple.Int(b), tuple.Int(e))
}

// Update rewrites a column's value for tuples matching the SQL condition
// during [begin, end): matching rows are split at the window boundaries
// and the in-window fragments get the new value. Like Delete, this is
// valid-time sequenced update semantics. It returns the number of
// affected input rows.
func (t *Table) Update(begin, end int64, column string, newValue any, where string) (int, error) {
	iv, ok := interval.TryNew(begin, end)
	if !ok {
		return 0, fmt.Errorf("snapk: invalid period [%d, %d)", begin, end)
	}
	colIdx := t.tbl.DataSchema().Index(column)
	if colIdx < 0 {
		return 0, fmt.Errorf("snapk: unknown column %q", column)
	}
	val, err := toValue(newValue)
	if err != nil {
		return 0, err
	}
	pred := algebra.BoolC(true)
	if where != "" {
		q, err := sqlfe.ParseAndTranslate(
			fmt.Sprintf("SELECT * FROM %s WHERE %s", t.name, where), t.db.eng)
		if err != nil {
			return 0, err
		}
		sel, okSel := q.(algebra.Select)
		if !okSel {
			return 0, fmt.Errorf("snapk: condition %q did not parse to a selection", where)
		}
		pred = sel.Pred
	}
	compiled, err := algebra.Compile(pred, t.tbl.DataSchema())
	if err != nil {
		return 0, err
	}
	affected := 0
	var out []tuple.Tuple
	n := t.tbl.DataArity()
	for _, row := range t.tbl.Rows {
		data := row[:n]
		riv := t.tbl.Interval(row)
		inter, overlaps := riv.Intersect(iv)
		if !algebra.Truthy(compiled(data)) || !overlaps {
			out = append(out, row)
			continue
		}
		affected++
		if riv.Begin < inter.Begin {
			out = append(out, periodRow(data, riv.Begin, inter.Begin))
		}
		updated := data.Clone()
		updated[colIdx] = val
		out = append(out, periodRow(updated, inter.Begin, inter.End))
		if inter.End < riv.End {
			out = append(out, periodRow(data, inter.End, riv.End))
		}
	}
	t.tbl.SetRows(out) // bulk mutation: drops the cached sortedness metadata
	return affected, nil
}

// CreateTableFromCSV registers a period relation loaded from CSV. The
// header names the data columns followed by two period columns; see
// internal/csvio for the format.
func (db *DB) CreateTableFromCSV(name string, r io.Reader) (*Table, error) {
	if _, err := db.eng.Table(name); err == nil {
		return nil, fmt.Errorf("snapk: table %q already exists", name)
	}
	tbl, err := csvio.ReadTable(r)
	if err != nil {
		return nil, err
	}
	dom := db.eng.Domain()
	for _, row := range tbl.Rows {
		if !dom.ContainsInterval(tbl.Interval(row)) {
			return nil, fmt.Errorf("snapk: row period %s outside time domain %s", tbl.Interval(row), dom)
		}
	}
	db.eng.AddTable(name, tbl)
	return &Table{db: db, name: name, tbl: tbl}, nil
}

// WriteCSV dumps the table's rows as CSV in canonical order.
func (t *Table) WriteCSV(w io.Writer) error { return csvio.WriteTable(w, t.tbl) }

// WriteCSV dumps a query result as CSV with begin/end columns.
func (r *Result) WriteCSV(w io.Writer) error {
	tbl := engine.NewTable(tuple.Schema{Cols: r.Columns})
	for _, row := range r.Rows {
		data := make(tuple.Tuple, len(row.Values))
		for i, v := range row.Values {
			tv, err := toValue(v)
			if err != nil {
				return err
			}
			data[i] = tv
		}
		iv, ok := interval.TryNew(row.Begin, row.End)
		if !ok {
			return fmt.Errorf("snapk: result row has empty period [%d, %d)", row.Begin, row.End)
		}
		tbl.Append(data, iv, 1)
	}
	return csvio.WriteTable(w, tbl)
}

// Coalesced returns whether the table's stored rows are already in the
// unique coalesced encoding, and a coalesced copy row count. Loading data
// does not require coalescing (queries coalesce their results), but the
// method is useful to inspect storage redundancy.
func (t *Table) Coalesced() (bool, int) {
	if t.tbl.KnownCoalesced() {
		// Metadata fast path: a table whose rows came out of a coalesce
		// is its own coalesced encoding, no rescan needed.
		return true, t.tbl.Len()
	}
	c := engine.Coalesce(t.tbl, engine.CoalesceNative)
	return engine.IsCoalesced(t.tbl, engine.CoalesceNative), c.Len()
}
